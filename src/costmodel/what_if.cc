#include "costmodel/what_if.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#if defined(IDXSEL_KERNEL)
#include "kernel/simd.h"
#endif

namespace idxsel::costmodel {
namespace {

/// A cost or size the selection layers can safely consume: finite and
/// non-negative. Everything else (NaN, +/-Inf, negative) is backend
/// garbage — see WhatIfEngine's validation contract.
bool WellFormed(double v) { return std::isfinite(v) && v >= 0.0; }

#if defined(IDXSEL_OBS)
/// Times one backend invocation into the latency histogram; a no-op
/// (single relaxed atomic load) while runtime-disabled.
class BackendCallTimer {
 public:
  explicit BackendCallTimer(obs::Histogram* histogram)
      : histogram_(obs::Enabled() ? histogram : nullptr),
        start_ns_(histogram_ != nullptr ? obs::MonotonicNanos() : 0) {}
  ~BackendCallTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(obs::MonotonicNanos() - start_ns_);
    }
  }

 private:
  obs::Histogram* histogram_;
  uint64_t start_ns_;
};
#endif

}  // namespace

double WhatIfBackend::CostWithConfig(QueryId j,
                                     const IndexConfig& config) const {
  double best = BaseCost(j);
  for (const Index& k : config.indexes()) {
    best = std::min(best, CostWithIndex(j, k));
  }
  return best;
}

WhatIfEngine::WhatIfEngine(const workload::Workload* workload_in,
                           WhatIfBackend* backend, bool canonicalize_keys)
    : workload_(workload_in),
      backend_(backend),
      canonicalize_keys_(canonicalize_keys) {
  IDXSEL_CHECK(workload_ != nullptr);
  IDXSEL_CHECK(backend_ != nullptr);
#if defined(IDXSEL_OBS)
  obs::Registry& registry = obs::Registry::Default();
  obs_calls_ = registry.GetCounter("idxsel.whatif.calls");
  obs_hits_ = registry.GetCounter("idxsel.whatif.cache_hits");
  obs_skipped_ = registry.GetCounter("idxsel.whatif.skipped_inapplicable");
  obs_sanitized_ = registry.GetCounter("idxsel.rt.sanitized");
  obs_latency_ = registry.GetHistogram("idxsel.whatif.backend_latency_ns");
  obs_cost_entries_ = registry.GetGauge("idxsel.whatif.cost_cache_entries");
  obs_config_entries_ =
      registry.GetGauge("idxsel.whatif.config_cache_entries");
#endif
#if defined(IDXSEL_KERNEL)
  // Dense tables only make sense under key canonicalization (their row
  // inheritance leans on the same invariant), so skip the ~1 MB of block
  // directories when it is off. Callers gate on DenseActive().
  if (canonicalize_keys_) {
    dense_ = std::make_unique<DenseState>(*workload_);
  }
#if defined(IDXSEL_OBS)
  obs_kernel_fast_ = registry.GetCounter("idxsel.kernel.fast_path_hits");
  obs_kernel_fallback_ =
      registry.GetCounter("idxsel.kernel.fallback_lookups");
#endif
#endif
  const size_t n = workload_->num_queries();
  base_cost_ = std::make_unique<std::atomic<double>[]>(n);
  for (size_t j = 0; j < n; ++j) {
    base_cost_[j].store(std::numeric_limits<double>::quiet_NaN(),
                        std::memory_order_relaxed);
  }
  for (QueryId j = 0; j < n; ++j) {
    if (workload_->query(j).kind == workload::QueryKind::kWrite) {
      write_queries_.push_back(j);
    }
  }
  // Pre-size the hot caches: selection strategies touch roughly every
  // (applicable query, candidate-prefix) pair, which lands near a small
  // multiple of Q; size caches also see every candidate attribute tuple.
  cost_cache_.Reserve(n * 8);
  memory_cache_.Reserve(workload_->num_attributes() * 4);
  if (!write_queries_.empty()) {
    maintenance_cache_.Reserve(workload_->num_attributes() * 4);
  }
}

WhatIfEngine::~WhatIfEngine() {
  // Return this engine's entries to the live cache-size gauges so a
  // destroyed engine leaves no phantom entries behind.
  IDXSEL_OBS_ONLY(
      obs_cost_entries_->Add(-static_cast<int64_t>(cost_cache_.Size()));
      obs_config_entries_->Add(
          -static_cast<int64_t>(config_cost_cache_.Size()));)
}

double WhatIfEngine::Sanitize(double value, double fallback,
                              const char* what) {
  if (WellFormed(value)) return value;
  stats_.sanitized.fetch_add(1, std::memory_order_relaxed);
  IDXSEL_OBS_ONLY(obs_sanitized_->Add();)
  {
    common::MutexLock lock(&health_mu_);
    if (health_.ok()) {
      health_ = Status::Internal(std::string("what-if backend returned ") +
                                 (std::isnan(value)      ? "NaN"
                                  : std::isinf(value)    ? "infinite"
                                                         : "negative") +
                                 " value from " + what);
    }
  }
  return fallback;
}

double WhatIfEngine::BaseCost(QueryId j) {
  IDXSEL_DCHECK(j < workload_->num_queries());
  // Fast path: one relaxed load. The stored value is written exactly once
  // (under the stripe lock below) and never changes until
  // InvalidateCostCache, so a non-NaN read is always the final answer.
  double cached = base_cost_[j].load(std::memory_order_acquire);
  if (!std::isnan(cached)) {
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    IDXSEL_OBS_ONLY(obs_hits_->Add();)
    return cached;
  }
  common::MutexLock lock(&base_mu_[j % kBaseLockStripes]);
  cached = base_cost_[j].load(std::memory_order_relaxed);
  if (!std::isnan(cached)) {
    // Lost the race: another thread fetched it while we waited — still a
    // cache hit from this caller's perspective, same as serial re-lookup.
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    IDXSEL_OBS_ONLY(obs_hits_->Add();)
    return cached;
  }
  double cost;
  {
    IDXSEL_OBS_ONLY(BackendCallTimer timer(obs_latency_);)
    cost = backend_->BaseCost(j);
  }
  // No better estimate exists when f_j(0) itself is garbage; clamp to 0
  // so the query can never fabricate benefit (any index looks useless
  // against a free query).
  cost = Sanitize(cost, 0.0, "BaseCost");
  base_cost_[j].store(cost, std::memory_order_release);
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  IDXSEL_OBS_ONLY(obs_calls_->Add();)
  return cost;
}

bool WhatIfEngine::Applicable(QueryId j, const Index& k) const {
  const workload::Query& q = workload_->query(j);
  if (workload_->attribute(k.leading()).table != q.table) return false;
  return std::binary_search(q.attributes.begin(), q.attributes.end(),
                            k.leading());
}

Index WhatIfEngine::CanonicalCostIndex(QueryId j, const Index& k) const {
  IDXSEL_DCHECK(Applicable(j, k));
  if (!canonicalize_keys_) return k;
  // f_j(k) only depends on the coverable prefix as a *set*; normalize so
  // equivalent what-if calls hit the cache (INUM-style reuse).
  const auto& q_attrs = workload_->query(j).attributes;
  const size_t len = k.CoverablePrefixLength(q_attrs);
  IDXSEL_DCHECK(len >= 1);
  std::vector<workload::AttributeId> prefix(
      k.attributes().begin(), k.attributes().begin() + static_cast<long>(len));
  std::sort(prefix.begin(), prefix.end());
  return Index(std::move(prefix));
}

bool WhatIfEngine::PeekCachedCost(QueryId j, const Index& k,
                                  double* out) const {
  return cost_cache_.Get(Key{j, CanonicalCostIndex(j, k)}, out);
}

bool WhatIfEngine::PeekCachedMemory(const Index& k, double* out) const {
  return memory_cache_.Get(k, out);
}

double WhatIfEngine::CostWithIndex(QueryId j, const Index& k) {
  if (!Applicable(j, k)) {
    stats_.skipped_inapplicable.fetch_add(1, std::memory_order_relaxed);
    IDXSEL_OBS_ONLY(obs_skipped_->Add();)
    return BaseCost(j);
  }
  Key key{j, CanonicalCostIndex(j, k)};
  // The compute runs under the key's shard lock: exactly one backend call
  // per distinct key even when parallel strategies race for it. Lock
  // order is cost-shard -> base-stripe (via the sanitize fallback); no
  // path acquires them in the other direction.
  auto [cost, hit] = cost_cache_.GetOrCompute(key, [&] {
    double c;
    {
      IDXSEL_OBS_ONLY(BackendCallTimer timer(obs_latency_);)
      // Ask the backend about the *canonical* index, not k: the cached
      // value must be a pure function of the key. f_j is mathematically
      // equal on every index sharing the key (same coverable prefix
      // set), but the backend may round the two computations differently
      // in the last ulp — and racing strategies reach the same key
      // through different k's, so computing with k would make the cached
      // value depend on who got here first (CostWithConfig already
      // computes with its canonical key for the same reason).
      c = backend_->CostWithIndex(j, key.index);
    }
    // Garbage f_j(k) falls back to f_j(0): the index looks useless for the
    // query, never harmful and never spuriously beneficial. (Guarded so the
    // healthy path never issues the extra BaseCost lookup.)
    if (!WellFormed(c)) {
      c = Sanitize(c, BaseCost(j), "CostWithIndex");
    }
    stats_.calls.fetch_add(1, std::memory_order_relaxed);
    IDXSEL_OBS_ONLY(obs_calls_->Add(); obs_cost_entries_->Add(1);)
    return c;
  });
  if (hit) {
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    IDXSEL_OBS_ONLY(obs_hits_->Add();)
  }
  return cost;
}

double WhatIfEngine::IndexMemory(const Index& k) {
  // Garbage p_k becomes +infinity: an index of unknown size can never be
  // admitted under a finite budget (the conservative direction for a
  // feasibility check). Cached, so every feasibility test agrees.
  return memory_cache_
      .GetOrCompute(k,
                    [&] {
                      return Sanitize(
                          backend_->IndexMemory(k),
                          std::numeric_limits<double>::infinity(),
                          "IndexMemory");
                    })
      .first;
}

double WhatIfEngine::MaintenancePenalty(const Index& k) {
  if (write_queries_.empty()) return 0.0;
  return maintenance_cache_
      .GetOrCompute(k,
                    [&] {
                      double penalty = 0.0;
                      for (QueryId j : write_queries_) {
                        // Garbage maintenance estimates are dropped (0):
                        // negative ones would fabricate benefit, non-finite
                        // ones would poison every WorkloadCost total the
                        // index participates in.
                        penalty += workload_->query(j).frequency *
                                   Sanitize(backend_->MaintenanceCost(j, k),
                                            0.0, "MaintenanceCost");
                      }
                      return penalty;
                    })
      .first;
}

double WhatIfEngine::ConfigMemory(const IndexConfig& config) {
  double total = 0.0;
  for (const Index& k : config.indexes()) total += IndexMemory(k);
  return total;
}

double WhatIfEngine::WorkloadCost(const IndexConfig& config) {
#if defined(IDXSEL_KERNEL)
  if (DenseActive()) return WorkloadCostDense(config);
#endif
  double total = 0.0;
  for (QueryId j = 0; j < workload_->num_queries(); ++j) {
    double best = BaseCost(j);
    for (const Index& k : config.indexes()) {
      if (!Applicable(j, k)) continue;
      best = std::min(best, CostWithIndex(j, k));
    }
    total += workload_->query(j).frequency * best;
  }
  for (const Index& k : config.indexes()) total += MaintenancePenalty(k);
  return total;
}

#if defined(IDXSEL_KERNEL)

Index WhatIfEngine::MaterializeIndex(kernel::IndexId id) const {
  const kernel::IndexArena& arena = dense_->arena;
  return Index(std::vector<workload::AttributeId>(
      arena.attrs(id), arena.attrs(id) + arena.width(id)));
}

double WhatIfEngine::CostWithIndexDense(QueryId j, kernel::IndexId id,
                                        uint32_t slot) {
  IDXSEL_DCHECK(DenseActive());
  const double cached = dense_->costs.Get(id, slot);
  if (!std::isnan(cached)) {
    // Counting a cache hit here matches the keyed path exactly: a filled
    // dense slot implies the hashed cache holds the canonical key — it
    // was inserted when the slot was filled, or the slot was inherited
    // from a row whose canonical key (identical for every query that
    // cannot exploit the extension) already was. See doc/cost_model.md.
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    IDXSEL_OBS_ONLY(obs_hits_->Add(); obs_kernel_fast_->Add();)
    return cached;
  }
  IDXSEL_OBS_ONLY(obs_kernel_fallback_->Add();)
  const double cost = CostWithIndex(j, MaterializeIndex(id));
  const auto& posting = workload_->queries_with(dense_->arena.leading(id));
  IDXSEL_DCHECK(slot < posting.size() && posting[slot] == j);
  dense_->costs.Put(id, slot, static_cast<uint32_t>(posting.size()), cost);
  return cost;
}

bool WhatIfEngine::PeekDenseCostBlock(kernel::IndexId id,
                                      const uint32_t* slots, size_t n,
                                      double* out) const {
  if (n == 0) return true;
  const kernel::DenseCostTable::RowView row = dense_->costs.ViewRow(id);
  if (row.values == nullptr) return false;
#ifndef NDEBUG
  for (size_t t = 0; t < n; ++t) IDXSEL_DCHECK(slots[t] < row.len);
#endif
  return kernel::simd::GatherRowWarm(kernel::RawValues(row.values), slots, n,
                                     out);
}

bool WhatIfEngine::CostWithIndexBatch(kernel::IndexId id,
                                      const uint32_t* slots, size_t n,
                                      double* out) {
  IDXSEL_DCHECK(DenseActive());
  if (n == 0) return true;
  const kernel::DenseCostTable::RowView row = dense_->costs.ViewRow(id);
  if (row.values == nullptr) return false;
#ifndef NDEBUG
  for (size_t t = 0; t < n; ++t) IDXSEL_DCHECK(slots[t] < row.len);
#endif
  if (!kernel::simd::GatherRowWarm(kernel::RawValues(row.values), slots, n,
                                   out)) {
    return false;
  }
  // Bulk equivalent of n dense hits in CostWithIndexDense: same counter
  // totals (the canonical keyed-cache entries provably exist for every
  // set slot — see the hit comment there), one fetch_add instead of n.
  stats_.cache_hits.fetch_add(n, std::memory_order_relaxed);
  IDXSEL_OBS_ONLY(obs_hits_->Add(n); obs_kernel_fast_->Add(n);)
  return true;
}

double WhatIfEngine::CostWithIndexDenseSlow(QueryId j, kernel::IndexId id) {
  const auto& posting = workload_->queries_with(dense_->arena.leading(id));
  const auto it = std::lower_bound(posting.begin(), posting.end(), j);
  IDXSEL_DCHECK(it != posting.end() && *it == j);
  return CostWithIndexDense(j, id,
                            static_cast<uint32_t>(it - posting.begin()));
}

double WhatIfEngine::IndexMemoryDense(kernel::IndexId id) {
  const double cached = dense_->memory.Get(id);
  if (!std::isnan(cached)) {
    IDXSEL_OBS_ONLY(obs_kernel_fast_->Add();)
    return cached;
  }
  IDXSEL_OBS_ONLY(obs_kernel_fallback_->Add();)
  // The keyed path sanitizes garbage sizes to +infinity (never NaN), so
  // every stored value reads back as "set".
  const double v = IndexMemory(MaterializeIndex(id));
  dense_->memory.Put(id, v);
  return v;
}

double WhatIfEngine::MaintenancePenaltyDense(kernel::IndexId id) {
  if (write_queries_.empty()) return 0.0;
  const double cached = dense_->maintenance.Get(id);
  if (!std::isnan(cached)) {
    IDXSEL_OBS_ONLY(obs_kernel_fast_->Add();)
    return cached;
  }
  IDXSEL_OBS_ONLY(obs_kernel_fallback_->Add();)
  const double v = MaintenancePenalty(MaterializeIndex(id));
  dense_->maintenance.Put(id, v);
  return v;
}

void WhatIfEngine::InheritCostRow(kernel::IndexId from, kernel::IndexId to) {
  IDXSEL_DCHECK(dense_->arena.leading(from) == dense_->arena.leading(to));
  const auto& posting = workload_->queries_with(dense_->arena.leading(to));
  dense_->costs.InheritRow(from, to, static_cast<uint32_t>(posting.size()));
}

double WhatIfEngine::WorkloadCostDense(const IndexConfig& config) {
  // One posting-list cursor per configured index: queries are visited in
  // ascending order, so applicability is a cursor advance instead of a
  // table lookup + binary search, and the cursor position doubles as the
  // dense row slot. Values, iteration order, and backend call order are
  // exactly those of the generic loop above (posting membership <=>
  // Applicable, because queries only touch same-table attributes).
  struct Cursor {
    kernel::IndexId id;
    const std::vector<QueryId>* posting;
    uint32_t pos;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(config.indexes().size());
  for (const Index& k : config.indexes()) {
    const kernel::IndexId id = InternIndex(k);
    cursors.push_back(
        {id, &workload_->queries_with(dense_->arena.leading(id)), 0});
  }
  double total = 0.0;
  for (QueryId j = 0; j < workload_->num_queries(); ++j) {
    double best = BaseCost(j);
    for (Cursor& c : cursors) {
      const std::vector<QueryId>& posting = *c.posting;
      while (c.pos < posting.size() && posting[c.pos] < j) ++c.pos;
      if (c.pos >= posting.size() || posting[c.pos] != j) continue;
      best = std::min(best, CostWithIndexDense(j, c.id, c.pos));
    }
    total += workload_->query(j).frequency * best;
  }
  for (const Cursor& c : cursors) total += MaintenancePenaltyDense(c.id);
  return total;
}

#endif  // IDXSEL_KERNEL

double WhatIfEngine::CostWithConfig(QueryId j, const IndexConfig& config) {
  // Only same-table indexes can influence the query; canonicalizing the key
  // to that subset lets unrelated configuration changes hit the cache.
  const workload::TableId table = workload_->query(j).table;
  IndexConfig relevant;
  for (const Index& k : config.indexes()) {
    if (workload_->attribute(k.leading()).table == table) {
      relevant.Insert(k);
    }
  }
  if (relevant.empty()) {
    stats_.skipped_inapplicable.fetch_add(1, std::memory_order_relaxed);
    IDXSEL_OBS_ONLY(obs_skipped_->Add();)
    return BaseCost(j);
  }
  ConfigKey key{j, std::move(relevant)};
  auto [cost, hit] = config_cost_cache_.GetOrCompute(key, [&] {
    double c;
    {
      IDXSEL_OBS_ONLY(BackendCallTimer timer(obs_latency_);)
      c = backend_->CostWithConfig(j, key.config);
    }
    // Same fallback as CostWithIndex: a garbage f_j(I*) degrades to "the
    // configuration does not help query j".
    if (!WellFormed(c)) {
      c = Sanitize(c, BaseCost(j), "CostWithConfig");
    }
    stats_.calls.fetch_add(1, std::memory_order_relaxed);
    IDXSEL_OBS_ONLY(obs_calls_->Add(); obs_config_entries_->Add(1);)
    return c;
  });
  if (hit) {
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    IDXSEL_OBS_ONLY(obs_hits_->Add();)
  }
  return cost;
}

double WhatIfEngine::WorkloadCostMultiIndex(const IndexConfig& config) {
  double total = 0.0;
  for (QueryId j = 0; j < workload_->num_queries(); ++j) {
    total += workload_->query(j).frequency * CostWithConfig(j, config);
  }
  for (const Index& k : config.indexes()) total += MaintenancePenalty(k);
  return total;
}

void WhatIfEngine::InvalidateCostCache() {
  // Keep the live-size gauges in lockstep with the caches they describe.
  const size_t cost_erased = cost_cache_.Clear();
  const size_t config_erased = config_cost_cache_.Clear();
  IDXSEL_OBS_ONLY(
      obs_cost_entries_->Add(-static_cast<int64_t>(cost_erased));
      obs_config_entries_->Add(-static_cast<int64_t>(config_erased));)
#if !defined(IDXSEL_OBS)
  (void)cost_erased;
  (void)config_erased;
#endif
#if defined(IDXSEL_KERNEL)
  // The dense table shadows the cost cache, so it must forget too (sizes
  // and maintenance penalties are kept, mirroring the keyed caches).
  if (dense_ != nullptr) dense_->costs.Invalidate();
#endif
  for (size_t j = 0; j < workload_->num_queries(); ++j) {
    base_cost_[j].store(std::numeric_limits<double>::quiet_NaN(),
                        std::memory_order_relaxed);
  }
}

void WhatIfEngine::InvalidateFrequencyDependentCaches() {
  // MaintenancePenalty(k) = sum over write queries of b_j *
  // MaintenanceCost(j, k); a frequency change stales exactly this cache
  // (and its dense mirror). Per-execution costs and sizes are untouched.
  maintenance_cache_.Clear();
#if defined(IDXSEL_KERNEL)
  if (dense_ != nullptr) dense_->maintenance.Invalidate();
#endif
}

}  // namespace idxsel::costmodel
