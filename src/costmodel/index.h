// Multi-attribute index representation.
//
// An index k = (i_1, ..., i_K) is an *ordered* tuple of attributes of one
// table (Section II-A). Order matters: an index is applicable to a query
// only through its leading attribute, and only the longest prefix contained
// in the query's attribute set can be exploited ("coverable prefix").

#ifndef IDXSEL_COSTMODEL_INDEX_H_
#define IDXSEL_COSTMODEL_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "workload/workload.h"

namespace idxsel::costmodel {

using workload::AttributeId;
using workload::QueryId;
using workload::TableId;

/// Ordered attribute tuple identifying one (multi-attribute) index.
/// Immutable value type with hashing; attributes must be pairwise distinct
/// and belong to one table (checked where a workload is available).
class Index {
 public:
  Index() = default;

  /// Single-attribute index {i}.
  explicit Index(AttributeId attribute) : attrs_{attribute} {}

  /// Multi-attribute index from an ordered attribute list.
  explicit Index(std::vector<AttributeId> attributes)
      : attrs_(std::move(attributes)) {
    IDXSEL_DCHECK(!attrs_.empty());
  }

  /// Number of attributes K.
  size_t width() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }

  /// u-th attribute (0-based) in index order.
  AttributeId attribute(size_t u) const { return attrs_[u]; }
  const std::vector<AttributeId>& attributes() const { return attrs_; }

  /// Leading attribute l(k); an index is applicable to q_j iff
  /// l(k) is in q_j.
  AttributeId leading() const {
    IDXSEL_DCHECK(!attrs_.empty());
    return attrs_.front();
  }

  /// Whether the tuple contains `attribute` at any position.
  bool Contains(AttributeId attribute) const;

  /// New index with `attribute` appended at the end ("morphing" step of
  /// Algorithm 1). Precondition: !Contains(attribute).
  Index Append(AttributeId attribute) const;

  /// Prefix of the first `len` attributes.
  Index Prefix(size_t len) const;

  /// True if `other` is a (not necessarily proper) prefix of this index.
  bool HasPrefix(const Index& other) const;

  /// Length of the longest prefix of this index whose attributes are all
  /// contained in the *sorted* attribute set `sorted_attrs`
  /// (the paper's U(q_j, k)).
  size_t CoverablePrefixLength(
      const std::vector<AttributeId>& sorted_attrs) const;

  bool operator==(const Index& other) const { return attrs_ == other.attrs_; }
  bool operator!=(const Index& other) const { return !(*this == other); }
  /// Lexicographic order; gives deterministic iteration in ordered sets.
  bool operator<(const Index& other) const { return attrs_ < other.attrs_; }

  /// FNV-style hash over the attribute tuple.
  size_t Hash() const;

  /// "(3,17,4)" — raw ids; use NamedWorkload for pretty names.
  std::string ToString() const;

 private:
  std::vector<AttributeId> attrs_;
};

/// Hash functor for unordered containers keyed by Index.
struct IndexHash {
  size_t operator()(const Index& k) const {
    // Finalize with SplitMix64 so both unordered_map bucket masks (low
    // bits) and exec::ShardedMap shard selection (high bits) see
    // well-mixed bits even for short attribute tuples.
    return SplitMix64(k.Hash());
  }
};

/// An index configuration I*: a set of indexes, kept sorted/unique so that
/// equality and hashing are canonical.
class IndexConfig {
 public:
  IndexConfig() = default;
  explicit IndexConfig(std::vector<Index> indexes);

  /// Inserts `k`; returns false if it was already present.
  bool Insert(const Index& k);

  /// Removes `k`; returns false if it was absent.
  bool Erase(const Index& k);

  bool Contains(const Index& k) const;

  size_t size() const { return indexes_.size(); }
  bool empty() const { return indexes_.empty(); }
  const std::vector<Index>& indexes() const { return indexes_; }

  bool operator==(const IndexConfig& other) const {
    return indexes_ == other.indexes_;
  }

  /// "{(1), (2,7)}".
  std::string ToString() const;

 private:
  std::vector<Index> indexes_;  // sorted, unique
};

}  // namespace idxsel::costmodel

#endif  // IDXSEL_COSTMODEL_INDEX_H_
