// What-if cost estimation interface and caching engine.
//
// The paper obtains per-(query, index) costs from a what-if optimizer and
// stresses that such calls dominate runtime, so they must be cached and
// counted (Sections I-A, III-A). WhatIfBackend abstracts the cost source:
// the Appendix-B analytic model (Section III), or measured executions on
// the bundled column-store engine (Section IV-B). WhatIfEngine adds the
// cache and the call accounting that the paper's analysis relies on
// (H6 ~ 2*Q*q-bar calls vs CoPhy ~ Q*q-bar*|I|/N).

#ifndef IDXSEL_COSTMODEL_WHAT_IF_H_
#define IDXSEL_COSTMODEL_WHAT_IF_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "costmodel/cost_model.h"
#include "costmodel/index.h"
#include "exec/sharded_map.h"
#include "obs/obs.h"

#if defined(IDXSEL_KERNEL)
#include "kernel/kernel.h"
#endif

namespace idxsel::costmodel {

/// Source of query costs and index sizes — "the what-if optimizer".
///
/// Thread-safety contract: parallel selection (exec::ThreadPool wired
/// through RecursiveSelector / mip::Solve / the advisor's portfolio mode)
/// issues concurrent calls, so backends must tolerate concurrent const
/// calls. The bundled backends do: ModelBackend is pure, MeasuredCostSource
/// serializes internally, rt::FaultInjectingBackend guards its PRNG.
class WhatIfBackend {
 public:
  virtual ~WhatIfBackend() = default;

  /// f_j(0): cost of query j without any index.
  virtual double BaseCost(QueryId j) const = 0;

  /// f_j(k): cost of query j when index k is available (k applicable).
  virtual double CostWithIndex(QueryId j, const Index& k) const = 0;

  /// f_j(I*): cost of query j when the whole configuration is available
  /// and multiple indexes may serve one query (Remark 2). The default
  /// implements the one-index-per-query setting of Example 1(i).
  virtual double CostWithConfig(QueryId j, const IndexConfig& config) const;

  /// p_k: memory footprint of index k in bytes.
  virtual double IndexMemory(const Index& k) const = 0;

  /// Per-execution maintenance cost write query j inflicts on index k;
  /// 0 by default (read-only backends).
  virtual double MaintenanceCost(QueryId j, const Index& k) const {
    (void)j;
    (void)k;
    return 0.0;
  }
};

/// Backend delegating to the Appendix-B analytic CostModel.
class ModelBackend : public WhatIfBackend {
 public:
  explicit ModelBackend(const CostModel* model) : model_(model) {
    IDXSEL_CHECK(model != nullptr);
  }

  double BaseCost(QueryId j) const override {
    return model_->UnindexedCost(j);
  }
  double CostWithIndex(QueryId j, const Index& k) const override {
    return model_->CostWithIndex(j, k);
  }
  double CostWithConfig(QueryId j, const IndexConfig& config) const override {
    return model_->CostMultiIndex(j, config);
  }
  double IndexMemory(const Index& k) const override {
    return model_->IndexMemory(k);
  }
  double MaintenanceCost(QueryId j, const Index& k) const override {
    return model_->MaintenanceCost(j, k);
  }

 private:
  const CostModel* model_;
};

/// Call counters; `calls` counts backend invocations (cache misses), i.e.
/// what the paper counts as "what-if optimizer calls".
///
/// This is a point-in-time *snapshot* of the per-engine numbers
/// ResetStats() rewinds (internally the counters are relaxed atomics so
/// parallel strategies can hammer the engine). Because the sharded caches
/// compute each key exactly once — concurrent requests for one key
/// serialize on its shard — the totals are the same whether a selection
/// ran on 1 thread or 8. When the build compiles observability in
/// (IDXSEL_OBS), every increment is mirrored onto process-wide counters in
/// obs::Registry::Default() ("idxsel.whatif.calls" / ".cache_hits" /
/// ".skipped_inapplicable", "idxsel.rt.sanitized"), alongside a
/// backend-latency histogram and live cache-size gauges — see
/// doc/observability.md.
struct WhatIfStats {
  uint64_t calls = 0;
  uint64_t cache_hits = 0;
  uint64_t skipped_inapplicable = 0;
  /// Backend answers rejected by the validating wrapper (non-finite or
  /// negative) and replaced by a safe fallback — see doc/robustness.md.
  uint64_t sanitized = 0;
};

/// Caching, call-counting, *validating* facade over a WhatIfBackend.
///
/// Inapplicable (query, index) pairs are answered with f_j(0) without
/// consulting the backend — a real advisor would not issue a what-if call
/// for an index whose leading attribute the query does not touch.
///
/// Validation: a hostile or broken backend (NaN/Inf/negative costs — see
/// rt::FaultInjectingBackend) must not corrupt benefit ratios, knapsack
/// bounds, or budgets. Every backend answer is checked; garbage is
/// replaced with a safe fallback (costs: f_j(0), itself clamped to 0 when
/// garbage; sizes: +infinity, so the index can never be selected under a
/// finite budget), counted in stats().sanitized, and recorded once in
/// health() as a non-OK Status instead of propagating into selections.
///
/// Cache keys are canonicalized to (query, coverable-prefix-attribute-set):
/// the cost of q_j under k only depends on the prefix of k the query can
/// exploit, and not on the order within that prefix. Recognizing equivalent
/// what-if calls this way is the INUM-style reuse the paper recommends; it
/// can be disabled via `canonicalize_keys` (e.g. for backends violating the
/// invariant).
///
/// Concurrency: every method is safe to call from any number of threads.
/// The caches are exec::ShardedMap instances (per-shard mutex, shard
/// chosen from mixed high hash bits); a cache miss computes the backend
/// answer while holding its shard lock, so each distinct key costs exactly
/// one backend call no matter how many threads race for it. The obs
/// cache-size gauges are incremented by the one computing thread and
/// decremented on Clear/destruction, keeping them equal to the live entry
/// counts at all times.
class WhatIfEngine {
 public:
  WhatIfEngine(const workload::Workload* workload, WhatIfBackend* backend,
               bool canonicalize_keys = true);
  ~WhatIfEngine();

  // Non-copyable: the engine owes its cached-entry counts to the global
  // cache-size gauges; a copy would pay them back twice on destruction.
  WhatIfEngine(const WhatIfEngine&) = delete;
  WhatIfEngine& operator=(const WhatIfEngine&) = delete;

  const workload::Workload& workload() const { return *workload_; }

  /// The uncached cost source this engine consults. Borrowed, never null.
  /// idxsel::shard wraps it in per-shard id-translating views so each
  /// shard's private engine asks the same backend the unsharded run would.
  const WhatIfBackend& backend() const { return *backend_; }

  /// Cached f_j(0).
  double BaseCost(QueryId j);

  /// Cached f_j(k). Returns BaseCost(j) for inapplicable k (no call).
  double CostWithIndex(QueryId j, const Index& k);

  /// p_k; cached (sizes are deterministic per index).
  double IndexMemory(const Index& k);

  /// Frequency-weighted maintenance the write queries inflict on index k:
  /// sum over writes j of b_j * MaintenanceCost(j, k). Cached per index;
  /// 0 for read-only workloads. Modular in the selection, so WorkloadCost
  /// adds it once per selected index.
  double MaintenancePenalty(const Index& k);

  /// Total memory of a configuration.
  double ConfigMemory(const IndexConfig& config);

  /// F(I*) under the one-index-per-query setting of Example 1(i):
  /// sum_j b_j * min(f_j(0), min_{k in I*} f_j(k)).
  double WorkloadCost(const IndexConfig& config);

  /// f_j(I*) in the multi-index setting (Remark 2); cached per
  /// (query, configuration). Configuration-level caching cannot reuse
  /// entries across different configurations, which is exactly why the
  /// paper notes that earlier what-if calls "have to be refreshed" in this
  /// mode.
  double CostWithConfig(QueryId j, const IndexConfig& config);

  /// F(I*) in the multi-index setting: sum_j b_j f_j(I*).
  double WorkloadCostMultiIndex(const IndexConfig& config);

  /// True iff l(k) is in q_j and both are on the same table.
  bool Applicable(QueryId j, const Index& k) const;

  // -- Introspection for audit::InvariantAuditor ---------------------------
  // Read-only peeks into the caches: never compute, never touch stats, so
  // an audit pass cannot perturb the call counts it runs beside.

  /// The canonical cache key CostWithIndex files f_j(k) under: the
  /// coverable-prefix attribute set of k for q_j, sorted (k itself when
  /// key canonicalization is disabled). Requires Applicable(j, k).
  Index CanonicalCostIndex(QueryId j, const Index& k) const;

  /// True iff the hashed cost cache holds an entry for
  /// (j, CanonicalCostIndex(j, k)); writes the cached value to *out.
  bool PeekCachedCost(QueryId j, const Index& k, double* out) const;

  /// True iff the hashed memory cache holds p_k; writes it to *out.
  bool PeekCachedMemory(const Index& k, double* out) const;

  /// Point-in-time snapshot of the per-engine call counters.
  WhatIfStats stats() const {
    WhatIfStats s;
    s.calls = stats_.calls.load(std::memory_order_relaxed);
    s.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
    s.skipped_inapplicable =
        stats_.skipped_inapplicable.load(std::memory_order_relaxed);
    s.sanitized = stats_.sanitized.load(std::memory_order_relaxed);
    return s;
  }

  /// OK while the backend has only ever returned well-formed answers;
  /// after the first rejected value, the Status describing that first
  /// failure (the engine keeps serving sanitized fallbacks either way).
  /// Strategies keep running; the advisor surfaces this as `degraded`.
  Status health() const {
    common::MutexLock lock(&health_mu_);
    return health_;
  }

  /// Forgives recorded backend misbehaviour: health() returns to OK.
  /// The serve-layer self-heal pairs this with InvalidateCostCache once a
  /// half-open probe succeeds — the flushed caches re-consult the (now
  /// healthy) backend, so a sticky health verdict would mislabel every
  /// later recommendation as degraded (doc/serve.md).
  void ResetHealth() {
    common::MutexLock lock(&health_mu_);
    health_ = Status::Ok();
  }

  /// Rewinds the per-engine call counters to zero. Deliberately does NOT
  /// touch the registry: the process-wide call counters are cumulative by
  /// design (run reports diff snapshots instead), and the cache-size
  /// gauges mirror the *live* cache contents — zeroing them here would
  /// desynchronize them from caches that still hold entries.
  void ResetStats() {
    stats_.calls.store(0, std::memory_order_relaxed);
    stats_.cache_hits.store(0, std::memory_order_relaxed);
    stats_.skipped_inapplicable.store(0, std::memory_order_relaxed);
    stats_.sanitized.store(0, std::memory_order_relaxed);
  }

  /// Drops all cached costs (sizes are kept); used by tests and by callers
  /// that change the backend's state (e.g. measured costs after reloads).
  /// Not safe concurrently with in-flight estimations.
  void InvalidateCostCache();

  /// Drops exactly the cached state that depends on query *frequencies*:
  /// the per-index maintenance penalties (MaintenancePenalty sums
  /// b_j * MaintenanceCost over write queries) and their dense mirror.
  /// Per-execution costs f_j(k), base costs f_j(0), and index sizes p_k
  /// are frequency-free and stay warm — this is the hook that makes
  /// serve's incremental re-selection after a frequency shift nearly
  /// backend-call-free (doc/serve.md). Like InvalidateCostCache, not safe
  /// concurrently with in-flight estimations.
  void InvalidateFrequencyDependentCaches();

#if defined(IDXSEL_KERNEL)
  /// True when the dense kernel fast path may be consulted: the build
  /// compiled it in, the runtime gate (kernel::Enabled / IDXSEL_KERNEL env
  /// var) is open, and cache keys are canonicalized — the dense tables key
  /// rows by interned index id and reuse rows across equivalent prefixes,
  /// which is only sound under the same invariant canonicalization relies
  /// on (doc/cost_model.md).
  bool DenseActive() const {
    return canonicalize_keys_ && kernel::Enabled();
  }

  /// The engine-owned intern arena. Ids are stable for the engine lifetime.
  kernel::IndexArena& arena() { return dense_->arena; }
  const kernel::IndexArena& arena() const { return dense_->arena; }

  /// Raw dense cost-table read (NaN = unset); no stats, no fallback, no
  /// fill. Audit-only: cross-validates dense slots against the hashed
  /// cache. `slot` must be within the posting list of id's leading
  /// attribute.
  double PeekDenseCost(kernel::IndexId id, uint32_t slot) const {
    return dense_->costs.Get(id, slot);
  }

  /// Raw dense memory-table read (NaN = unset); audit-only.
  double PeekDenseMemory(kernel::IndexId id) const {
    return dense_->memory.Get(id);
  }

  /// Batched PeekDenseCost: gathers id's row at `slots[0..n)` into `out`
  /// and reports whether every addressed slot is set. No stats, no
  /// fallback, no fill — the warmth probe of the batched evaluation (a
  /// cold probe must leave nothing to compensate before the caller
  /// demotes to the per-call path) and the audit layer's bulk reader.
  bool PeekDenseCostBlock(kernel::IndexId id, const uint32_t* slots, size_t n,
                          double* out) const;

  /// Per-query 64-bit attribute masks (built once at construction).
  const kernel::QueryMasks& query_masks() const { return dense_->masks; }

  /// Interns `k`, returning its dense id.
  kernel::IndexId InternIndex(const Index& k) {
    return dense_->arena.Intern(k.attributes().data(),
                                static_cast<uint32_t>(k.attributes().size()));
  }

  /// Rebuilds the Index value for an interned id.
  Index MaterializeIndex(kernel::IndexId id) const;

  /// Cached f_j(k) addressed by dense id. `slot` is j's position in the
  /// posting list of l(k) (workload().queries_with(l(k))); callers walking
  /// posting lists already know it. On a dense-table hit this is one array
  /// load (counted as a cache hit — the hashed cache provably holds the
  /// canonical key too, see doc/cost_model.md); on a miss it falls back to
  /// the keyed path and then fills the dense slot.
  double CostWithIndexDense(QueryId j, kernel::IndexId id, uint32_t slot);

  /// CostWithIndexDense for callers that do not know the posting slot;
  /// resolves it with a binary search over the posting list.
  double CostWithIndexDenseSlow(QueryId j, kernel::IndexId id);

  /// Batched what-if evaluation: one candidate id against a whole query
  /// block in a single pass over its dense row. `slots[0..n)` are posting
  /// slots of the id's leading attribute; on success `out[t]` receives
  /// exactly the value CostWithIndexDense(posting[slots[t]], id, slots[t])
  /// would have returned, and the same accounting (n cache hits, n
  /// fast-path hits) is applied in bulk.
  ///
  /// All-or-nothing: if ANY addressed slot is still unset (or the row does
  /// not exist), returns false having consumed NOTHING — no stats, no
  /// backend calls, no fills. The caller then falls back to the per-call
  /// API, whose backend call order is the one the bit-identity contract
  /// (and rt::FaultInjectingBackend's PRNG stream) depends on. A warm
  /// block has no backend interaction at all, which is why batching it
  /// cannot perturb call order.
  bool CostWithIndexBatch(kernel::IndexId id, const uint32_t* slots, size_t n,
                          double* out);

  /// p_k / frequency-weighted maintenance addressed by dense id.
  double IndexMemoryDense(kernel::IndexId id);
  double MaintenancePenaltyDense(kernel::IndexId id);

  /// Copies `from`'s dense cost row into unset slots of `to`'s row. Sound
  /// only when every query either exploits the extension (its slot was
  /// recomputed before the call) or provably cannot (f_j identical — the
  /// canonicalization invariant); the H6 commit step is the only caller.
  void InheritCostRow(kernel::IndexId from, kernel::IndexId to);
#endif

 private:
  /// Returns `value` if it is a well-formed cost/size (finite, >= 0);
  /// otherwise counts the rejection, records the first failure in
  /// health_, and returns `fallback`. `what` names the backend method for
  /// the health message.
  double Sanitize(double value, double fallback, const char* what);

  struct Key {
    QueryId query;
    Index index;
    bool operator==(const Key& o) const {
      return query == o.query && index == o.index;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // SplitMix64-mixed combination (common/hash.h): the previous
      // `index.Hash() * 1000003 + query` chaining left sequential query
      // ids clustered in the low bits, which both unordered_map bucketing
      // and shard selection consume.
      return HashCombine(SplitMix64(k.query), k.index.Hash());
    }
  };

  struct ConfigKey {
    QueryId query;
    IndexConfig config;
    bool operator==(const ConfigKey& o) const {
      return query == o.query && config == o.config;
    }
  };
  struct ConfigKeyHash {
    size_t operator()(const ConfigKey& k) const {
      uint64_t h = SplitMix64(k.query);
      for (const Index& index : k.config.indexes()) {
        h = HashCombine(h, index.Hash());
      }
      return h;
    }
  };

  const workload::Workload* workload_;
  WhatIfBackend* backend_;
  bool canonicalize_keys_;

  /// Relaxed atomics: see WhatIfStats docs for the determinism argument.
  struct AtomicStats {
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> skipped_inapplicable{0};
    std::atomic<uint64_t> sanitized{0};
  };
  AtomicStats stats_;

  mutable common::Mutex health_mu_;
  Status health_ IDXSEL_GUARDED_BY(health_mu_);  // first misbehaviour, or OK

#if defined(IDXSEL_OBS)
  // Process-wide mirrors (resolved once; see WhatIfStats docs).
  obs::Counter* obs_calls_;
  obs::Counter* obs_hits_;
  obs::Counter* obs_skipped_;
  obs::Counter* obs_sanitized_;      ///< idxsel.rt.sanitized.
  obs::Histogram* obs_latency_;      ///< idxsel.whatif.backend_latency_ns.
  obs::Gauge* obs_cost_entries_;     ///< idxsel.whatif.cost_cache_entries.
  obs::Gauge* obs_config_entries_;   ///< idxsel.whatif.config_cache_entries.
#endif

  /// f_j(0) per query; NaN = not yet fetched. Fast path is one relaxed
  /// atomic load; misses serialize on a small lock stripe so each query's
  /// base cost is fetched exactly once.
  std::unique_ptr<std::atomic<double>[]> base_cost_;
  static constexpr size_t kBaseLockStripes = 16;
  /// Lock stripes for base_cost_ misses: stripe j%16 serializes the fill
  /// of slot j. Element-wise guarding is beyond IDXSEL_GUARDED_BY (the
  /// guarded expression must name one capability), so the fill discipline
  /// is stated here and enforced by review + TSan.
  // idxsel-lint: allow(guarded-field) reason=striped locks; element-wise
  // guarding of base_cost_ slots is inexpressible in the annotations
  std::array<common::Mutex, kBaseLockStripes> base_mu_;

  exec::ShardedMap<Key, double, KeyHash> cost_cache_;
  exec::ShardedMap<ConfigKey, double, ConfigKeyHash> config_cost_cache_;
  exec::ShardedMap<Index, double, IndexHash> memory_cache_;
  exec::ShardedMap<Index, double, IndexHash> maintenance_cache_;
  std::vector<QueryId> write_queries_;  // precomputed at construction

#if defined(IDXSEL_KERNEL)
  /// F(I*) via interned ids and posting-list cursors; same values, same
  /// backend call order as the generic loop (doc/cost_model.md).
  double WorkloadCostDense(const IndexConfig& config);

  /// Dense-id-addressed state. Heap-allocated: the block-pointer
  /// directories inside the tables are hundreds of KB and the engine is
  /// routinely stack-constructed.
  struct DenseState {
    explicit DenseState(const workload::Workload& w) : masks(w) {}
    kernel::IndexArena arena;
    kernel::QueryMasks masks;
    kernel::DenseCostTable costs;        ///< f_j(k) by (id, posting slot).
    kernel::DenseValueTable memory;      ///< p_k by id.
    kernel::DenseValueTable maintenance; ///< maintenance penalty by id.
  };
  std::unique_ptr<DenseState> dense_;
#if defined(IDXSEL_OBS)
  obs::Counter* obs_kernel_fast_;      ///< idxsel.kernel.fast_path_hits.
  obs::Counter* obs_kernel_fallback_;  ///< idxsel.kernel.fallback_lookups.
#endif
#endif
};

}  // namespace idxsel::costmodel

#endif  // IDXSEL_COSTMODEL_WHAT_IF_H_
