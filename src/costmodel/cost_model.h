// The paper's reproducible exemplary cost model (Appendix B), made precise.
//
// Costs approximate transferred memory (bytes) in a vector-at-a-time
// columnar engine:
//
//   * Index scan of query j via index k with coverable prefix U(q_j, k):
//       log2(n) + sum_{i in U} a_i * log2(d_i) + 4 * n * prod_{m in U} s_m
//     (B-tree-descent reads, key-column comparisons across the *used*
//     prefix, and writing the 4-byte-per-entry position list of the
//     result). Summing over U rather than all of k makes
//     f_j(k ++ i) == f_j(k) whenever q_j cannot exploit the extension,
//     which is the invariant behind the paper's what-if caching argument
//     (Section II-C / III-A).
//   * Sequential scan of attribute i while a fraction c of rows survive:
//       a_i * n * c + 4 * n * c * s_i
//     after which c <- c * s_i. Unindexed attributes are scanned in
//     ascending-selectivity order (most selective first), per Appendix B(i)5.
//   * Index memory (Appendix B(ii), verbatim):
//       p_k = ceil(ceil(log2 n) * n / 8) + sum_{i in k} a_i * n.
//   * Budget A(w) = w * sum over all single-attribute indexes of p_{i}
//     (eq. 10).

#ifndef IDXSEL_COSTMODEL_COST_MODEL_H_
#define IDXSEL_COSTMODEL_COST_MODEL_H_

#include <vector>

#include "costmodel/index.h"
#include "workload/workload.h"

namespace idxsel::costmodel {

/// Tunable constants of the Appendix-B model.
struct CostModelParams {
  /// Bytes per written position-list entry ("written position list elements
  /// amount to 4 bytes").
  double position_list_bytes = 4.0;
};

// Write queries: the paper's model admits updates as query types (Section
// II-A: "a query q_j can be of various type, such as a selection, join,
// insert, update"). A write template pays a base cost to locate and write
// its attributes, plus *maintenance* on every selected index that covers a
// written attribute (entry relocation in the sorted structure). The
// maintenance term is modular in the selection, so every solver handles it
// exactly (see mip::Problem::candidate_penalty).

/// Analytic cost model over a fixed workload. Stateless and cheap; all
/// methods are const and thread-compatible.
class CostModel {
 public:
  explicit CostModel(const workload::Workload* workload,
                     CostModelParams params = {});

  const workload::Workload& workload() const { return *workload_; }

  // -- Memory ---------------------------------------------------------------

  /// p_k: bytes consumed by index k.
  double IndexMemory(const Index& k) const;

  /// Sum of p_{i} over all single-attribute indexes (denominator of eq. 10).
  double TotalSingleAttributeMemory() const;

  /// A(w) = w * TotalSingleAttributeMemory().
  double Budget(double w) const { return w * total_single_attr_memory_; }

  // -- Query costs ------------------------------------------------------------

  /// f_j(0): cost of query j with no index (pure sequential scans).
  double UnindexedCost(QueryId j) const;

  /// f_j(k): cost of query j when exactly index k may be used (plus
  /// sequential scans for the uncovered attributes). If k is not applicable
  /// (leading attribute not in q_j, or different table) this equals f_j(0).
  double CostWithIndex(QueryId j, const Index& k) const;

  /// f_j(I*) in the "one index only" setting of Example 1(i):
  /// min(f_j(0), min_{k in I*} f_j(k)).
  double CostOneIndex(QueryId j, const IndexConfig& config) const;

  /// f_j(I*) in the general multi-index setting (Appendix B(i)): greedily
  /// applies the applicable index with the largest selectivity reduction
  /// over the still-uncovered attributes, then scans leftovers.
  double CostMultiIndex(QueryId j, const IndexConfig& config) const;

  // -- Applicability -----------------------------------------------------------

  /// True iff l(k) is in q_j (the paper's condition defining I_j).
  bool Applicable(QueryId j, const Index& k) const;

  // -- Writes -----------------------------------------------------------------

  /// Per-execution maintenance cost index k incurs from write query j:
  /// 0 when j is a read, on another table, or touches none of k's
  /// attributes; otherwise locate + entry rewrite
  /// (log2(n) + sum_{i in k} a_i + position-list entry).
  double MaintenanceCost(QueryId j, const Index& k) const;

 private:
  /// Cost of sequentially scanning `attrs` (ascending selectivity) starting
  /// from surviving-fraction `c` on a table with `rows` rows.
  double SequentialScanCost(const std::vector<AttributeId>& attrs, double c,
                            double rows) const;

  /// Index-probe cost of k with coverable prefix length `prefix_len` on a
  /// table with `rows` rows, given surviving fraction `c`; also returns the
  /// new surviving fraction through `c`.
  double IndexProbeCost(const Index& k, size_t prefix_len, double rows,
                        double* c) const;

  const workload::Workload* workload_;
  CostModelParams params_;
  double total_single_attr_memory_;
};

}  // namespace idxsel::costmodel

#endif  // IDXSEL_COSTMODEL_COST_MODEL_H_
