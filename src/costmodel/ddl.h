// DDL rendering for index selections.
//
// Turns an IndexConfig into executable-looking `CREATE INDEX` statements
// (and the drop/create delta between two configurations for
// reconfiguration scripts). Attribute names come from a NamedWorkload;
// without names, ids are used.

#ifndef IDXSEL_COSTMODEL_DDL_H_
#define IDXSEL_COSTMODEL_DDL_H_

#include <string>
#include <vector>

#include "costmodel/index.h"
#include "workload/workload.h"

namespace idxsel::costmodel {

/// "CREATE INDEX idx_<table>_<cols> ON <table> (<col>, ...);" per index,
/// one per line, deterministic order. `attribute_names` are optional
/// "TABLE.ATTR" labels indexed by AttributeId.
std::string RenderCreateStatements(
    const workload::Workload& workload, const IndexConfig& config,
    const std::vector<std::string>* attribute_names = nullptr);

/// Migration script from `current` to `target`: DROP statements for
/// removed indexes first, then CREATE statements for added ones. Indexes
/// present in both appear in neither.
std::string RenderMigration(
    const workload::Workload& workload, const IndexConfig& current,
    const IndexConfig& target,
    const std::vector<std::string>* attribute_names = nullptr);

/// Stable identifier of one index: "idx_<table>_<col1>_<col2>".
std::string IndexName(const workload::Workload& workload, const Index& k,
                      const std::vector<std::string>* attribute_names =
                          nullptr);

}  // namespace idxsel::costmodel

#endif  // IDXSEL_COSTMODEL_DDL_H_
