// Reconfiguration costs R(I*, I-bar*) — eq. (3).
//
// Changing an existing selection I-bar* into a new selection I* requires
// creating the indexes in I* \ I-bar* and dropping the ones in I-bar* \ I*.
// The paper leaves R "arbitrarily defined"; we provide the natural
// traffic-based model: building an index costs a multiple of its size
// (read base columns + sort + write), dropping is a small constant.

#ifndef IDXSEL_COSTMODEL_RECONFIGURATION_H_
#define IDXSEL_COSTMODEL_RECONFIGURATION_H_

#include "costmodel/index.h"
#include "costmodel/what_if.h"

namespace idxsel::costmodel {

/// Parameters of the reconfiguration-cost model.
struct ReconfigurationParams {
  /// Build cost per byte of the created index (read + sort + write).
  double create_factor = 3.0;
  /// Flat cost per dropped index (catalog update, memory release).
  double drop_cost = 0.0;
};

/// R(new_config, old_config): cost of transforming `old_config` into
/// `new_config`. Indexes present in both selections are free.
class ReconfigurationModel {
 public:
  ReconfigurationModel(WhatIfEngine* engine, ReconfigurationParams params = {})
      : engine_(engine), params_(params) {
    IDXSEL_CHECK(engine != nullptr);
  }

  /// Cost of creating index k from scratch.
  double CreateCost(const Index& k) const {
    return params_.create_factor * engine_->IndexMemory(k);
  }

  /// R(I*, I-bar*).
  double Cost(const IndexConfig& new_config,
              const IndexConfig& old_config) const {
    double cost = 0.0;
    for (const Index& k : new_config.indexes()) {
      if (!old_config.Contains(k)) cost += CreateCost(k);
    }
    for (const Index& k : old_config.indexes()) {
      if (!new_config.Contains(k)) cost += params_.drop_cost;
    }
    return cost;
  }

 private:
  WhatIfEngine* engine_;
  ReconfigurationParams params_;
};

}  // namespace idxsel::costmodel

#endif  // IDXSEL_COSTMODEL_RECONFIGURATION_H_
