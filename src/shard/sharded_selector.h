// Sharded Algorithm 1 with a global budget arbiter.
//
// Each shard runs plain H6 (core::SelectRecursive) on its private view
// under a *generous* budget assumption, producing a trace of candidate
// moves; the arbiter greedily merges the shards' next-move proposals on
// benefit-per-byte ratio — exactly the step criterion of the global run —
// and commits them against the one shared budget. When the arbiter's
// marginal budget diverges from a shard's local assumption (the proposal
// no longer fits what is left), the shard is re-expanded at the clamped
// budget committed_s + remaining; the re-run reproduces the already
// consumed trace prefix bit-for-bit (smaller budgets only reject moves
// that had already lost) and then yields the true next move. Re-runs hit
// the shard engine's warm caches, so they cost no backend calls.
//
// Exactness: on single-table-coupled workloads (every query touches one
// table — the model of Section II-A) the committed move sequence, the
// selection, the trace values, and the emitted journal records are
// bit-identical to unsharded H6 at any shard count and any thread count,
// provided the shared extensions are off (see the advisor's eligibility
// gate) and compression is off. doc/sharding.md carries the proof sketch
// and the two epsilon-boundary caveats (cross-table exact ratio ties,
// budget knife-edge FP reassociation).
//
// Lazy deepening: per-shard runs are step-capped (kLookahead moves past
// the consumed cursor) so S shards never each run to full-budget
// completion; caps are extended on demand. Work is ~R*M/S versus the
// global run's R*M (R rounds, M moves per round), which is why the
// sharded path wins wall-clock even single-threaded — bench_trajectory's
// shard ladder asserts it.
//
// Journal discipline: inner per-shard H6 journals are suppressed
// (telemetry::ScopedJournalSuppress) — shards run concurrently and
// re-runs replay prefixes, so raw records would interleave and duplicate.
// The arbiter emits its own lane ("shard"): one commit record per round
// plus a terminal stop record, none of whose fields depend on the shard
// or thread count. Shard-count-dependent numbers (shards used, re-runs)
// go to idxsel.shard.* telemetry and bench sidecars only.

#ifndef IDXSEL_SHARD_SHARDED_SELECTOR_H_
#define IDXSEL_SHARD_SHARDED_SELECTOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/recursive_selector.h"
#include "costmodel/index.h"
#include "costmodel/what_if.h"
#include "shard/partition.h"
#include "workload/compression.h"

namespace idxsel::shard {

struct ShardedOptions {
  /// Shard count (clamped to [1, query-bearing tables]).
  size_t shards = 1;
  /// Lanes for the initial parallel per-shard runs (re-runs are serial —
  /// they happen inside the deterministic arbitration loop). 1 = serial.
  size_t threads = 1;
  /// Global commit cap / minimal improvement ratio / index width cap —
  /// same semantics as core::RecursiveOptions.
  size_t max_steps = std::numeric_limits<size_t>::max();
  double min_ratio = 0.0;
  size_t max_index_width = std::numeric_limits<size_t>::max();
  /// Per-shard workload compression, applied before any what-if call.
  /// Strictly per-table, so results stay shard-count-independent; kNone
  /// (the default) keeps the sharded path bit-identical to unsharded H6.
  workload::CompressionOptions compression{workload::CompressionMode::kNone};
  /// Test hook: decorates shard `s`'s id-translating view backend (e.g.
  /// with rt::FaultInjectingBackend for the chaos tests). The returned
  /// backend is owned by the selector; return nullptr to use the view
  /// directly. Must be deterministic per shard.
  std::function<std::unique_ptr<costmodel::WhatIfBackend>(
      size_t s, const costmodel::WhatIfBackend& view)>
      wrap_backend;
};

/// Shard-count-*dependent* run statistics — telemetry/bench material,
/// never journal material.
struct ShardedStats {
  size_t shards_used = 0;
  uint64_t arbiter_rounds = 0;  ///< committed moves
  uint64_t shard_runs = 0;      ///< SelectRecursive invocations, total
  uint64_t reruns = 0;          ///< re-expansions (extensions + clamps)
  uint64_t queries_full = 0;        ///< shard-local templates pre-compression
  uint64_t queries_compressed = 0;  ///< templates actually selected over
  size_t degraded_shards = 0;   ///< shards whose engine sanitized garbage
};

struct ShardedResult {
  costmodel::IndexConfig selection;  ///< global ids
  /// Committed steps in global ids; objective_before/after thread the
  /// *full-workload* objective through the per-step benefit deltas.
  std::vector<core::ConstructionStep> trace;
  /// (memory, objective) after every commit — the H6 frontier curve.
  std::vector<std::pair<double, double>> frontier;
  double objective = 0.0;  ///< full-workload objective after all commits
  double memory = 0.0;     ///< bytes committed (<= budget)
  uint64_t whatif_calls = 0;  ///< backend calls across all shard engines
  ShardedStats stats;
  /// OK, or Timeout when the deadline cut arbitration short (the
  /// selection is then the best-so-far incumbent, still budget-feasible).
  Status status;
  /// Some shard's backend returned garbage (sanitized per-shard; the
  /// global plan stays budget-feasible — sanitized sizes are +inf and can
  /// never be committed).
  bool degraded = false;
};

/// Reusable sharded selector: partitions once, keeps per-shard engines
/// (and their warm caches) across Select() calls, and rebuilds only
/// shards marked dirty — the serve layer's incremental hook.
class ShardedSelector {
 public:
  /// Borrows `engine` (for the live workload and the global backend);
  /// must outlive the selector.
  ShardedSelector(costmodel::WhatIfEngine& engine,
                  const ShardedOptions& options);
  ~ShardedSelector();

  ShardedSelector(const ShardedSelector&) = delete;
  ShardedSelector& operator=(const ShardedSelector&) = delete;

  size_t shards() const { return set_.shards.size(); }

  /// The queries of `table` changed in the live workload (frequency
  /// shift); the owning shard is rebuilt from it on the next Select().
  /// Structural changes need a new selector (new workload object).
  void MarkDirty(workload::TableId table);

  /// One full selection under `budget`. `cost_before` is F(empty) on the
  /// full workload — the advisor computes it anyway — used as the
  /// objective baseline of trace and journal records.
  ShardedResult Select(double budget, double cost_before,
                       const rt::Deadline& deadline = {});

 private:
  struct ShardState;

  void RebuildShard(size_t s);
  /// Guarantees state holds a run at exactly `run_budget` able to answer
  /// "what is step `min_steps - 1`?" (i.e. trace long enough, or proven
  /// exhausted). Returns false when the deadline expired mid-run.
  bool EnsureRun(ShardState& state, double run_budget, size_t min_steps);

  costmodel::WhatIfEngine& engine_;
  ShardedOptions options_;
  ShardSet set_;
  std::vector<std::unique_ptr<ShardState>> states_;
  /// The active Select() call's deadline (EnsureRun forwards it into the
  /// per-shard runs). Set on entry to Select.
  rt::Deadline deadline_;
};

/// One-shot convenience wrapper.
ShardedResult SelectSharded(costmodel::WhatIfEngine& engine,
                            const ShardedOptions& options, double budget,
                            double cost_before,
                            const rt::Deadline& deadline = {});

}  // namespace idxsel::shard

#endif  // IDXSEL_SHARD_SHARDED_SELECTOR_H_
