// Per-table workload partitioning — the decomposition behind idxsel::shard.
//
// The paper's selection problem decomposes by table: a query template
// touches exactly one table (Section II-A), an index spans attributes of
// one table, and every elementary move of Algorithm 1 — creating {i} or
// appending i to an existing k — affects only queries of that table. The
// ONLY coupling between tables is the shared storage budget A. Partition
// the tables across shards, give each shard a private workload view and
// what-if engine, and per-shard H6 runs are exact restrictions of the
// global run; the budget coupling is resolved by the arbiter in
// sharded_selector.h. See doc/sharding.md for the full argument.
//
// A ShardWorkload is a self-contained local workload (dense local ids,
// finalized, optionally compressed per workload/compression.h) plus the
// local->global id maps. ShardViewBackend translates local ids back to
// global ones and delegates to the *global* backend, so every shard asks
// the same cost source the unsharded run would — per-execution costs are
// bitwise identical by construction.

#ifndef IDXSEL_SHARD_PARTITION_H_
#define IDXSEL_SHARD_PARTITION_H_

#include <cstdint>
#include <vector>

#include "costmodel/what_if.h"
#include "workload/compression.h"
#include "workload/workload.h"

namespace idxsel::shard {

/// One shard's private view of the workload.
struct ShardWorkload {
  workload::Workload local;  ///< finalized; dense local ids
  /// Global ids of the shard's tables, ascending.
  std::vector<workload::TableId> tables;
  /// Local attribute id -> global attribute id.
  std::vector<workload::AttributeId> attr_to_global;
  /// Local query id -> *representative* global query id. 1:1 without
  /// compression; under compression the representative is the first
  /// source template with the local template's signature (its
  /// per-execution costs are exactly the local template's).
  std::vector<workload::QueryId> query_to_global;
  /// Shard-local query count before compression.
  size_t source_queries = 0;
};

/// The full partition: every query-bearing table belongs to exactly one
/// shard; query-less tables belong to none (no move can ever select their
/// attributes — zero benefit).
struct ShardSet {
  static constexpr uint32_t kNoShard = ~uint32_t{0};
  std::vector<ShardWorkload> shards;
  /// Global table id -> owning shard (kNoShard for query-less tables).
  std::vector<uint32_t> table_shard;
};

/// Builds one shard's view over `tables` (global ids, ascending), applying
/// `compression` per workload/compression.h. Deterministic; per-table
/// compression makes the result independent of which other tables share
/// the shard.
ShardWorkload BuildShardWorkload(
    const workload::Workload& workload,
    std::vector<workload::TableId> tables,
    const workload::CompressionOptions& compression);

/// Partitions the query-bearing tables of `workload` round-robin (by
/// ascending table id) into `shards` shards — deterministic for a given
/// shard count; the arbiter makes the *results* independent of it.
/// `shards` is clamped to [1, query-bearing tables].
ShardSet PartitionByTable(const workload::Workload& workload, size_t shards,
                          const workload::CompressionOptions& compression);

/// Id-translating what-if view: answers for a ShardWorkload's local ids by
/// delegating to the global backend. Stateless beyond the borrowed view
/// and inner backend; thread-safe iff the inner backend is.
class ShardViewBackend : public costmodel::WhatIfBackend {
 public:
  /// Neither pointer is owned; both must outlive the view.
  ShardViewBackend(const ShardWorkload* view,
                   const costmodel::WhatIfBackend* inner)
      : view_(view), inner_(inner) {}

  double BaseCost(workload::QueryId j) const override {
    return inner_->BaseCost(view_->query_to_global[j]);
  }
  double CostWithIndex(workload::QueryId j,
                       const costmodel::Index& k) const override {
    return inner_->CostWithIndex(view_->query_to_global[j], ToGlobal(k));
  }
  double CostWithConfig(workload::QueryId j,
                        const costmodel::IndexConfig& config) const override;
  double IndexMemory(const costmodel::Index& k) const override {
    return inner_->IndexMemory(ToGlobal(k));
  }
  double MaintenanceCost(workload::QueryId j,
                         const costmodel::Index& k) const override {
    return inner_->MaintenanceCost(view_->query_to_global[j], ToGlobal(k));
  }

  /// Local-id index -> global-id index (order preserved).
  costmodel::Index ToGlobal(const costmodel::Index& k) const;

 private:
  const ShardWorkload* view_;
  const costmodel::WhatIfBackend* inner_;
};

}  // namespace idxsel::shard

#endif  // IDXSEL_SHARD_PARTITION_H_
