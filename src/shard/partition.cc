#include "shard/partition.h"

#include <utility>

#include "common/check.h"

namespace idxsel::shard {

using workload::AttributeId;
using workload::QueryId;
using workload::TableId;

ShardWorkload BuildShardWorkload(
    const workload::Workload& workload, std::vector<TableId> tables,
    const workload::CompressionOptions& compression) {
  ShardWorkload out;
  out.tables = std::move(tables);

  // Schema subset with dense local ids; remember the global id of every
  // local attribute and the local id of every shard attribute (scratch).
  workload::Workload raw;
  std::vector<AttributeId> global_to_local(workload.num_attributes(),
                                           workload::kInvalidAttribute);
  std::vector<uint32_t> table_rank(workload.num_tables(), ShardSet::kNoShard);
  for (size_t r = 0; r < out.tables.size(); ++r) {
    const TableId t = out.tables[r];
    const workload::TableSchema& schema = workload.table(t);
    const TableId local_t = raw.AddTable(schema.name, schema.row_count);
    IDXSEL_CHECK_EQ(local_t, static_cast<TableId>(r));
    table_rank[t] = static_cast<uint32_t>(r);
    for (AttributeId a : schema.attributes) {
      const workload::AttributeStats& stats = workload.attribute(a);
      global_to_local[a] =
          raw.AddAttribute(local_t, stats.distinct_values, stats.value_size);
      out.attr_to_global.push_back(a);
    }
  }

  // Queries in ascending global id order, so local query ids order the
  // shard's queries exactly as the global workload does (the benefit sums
  // of Algorithm 1 then accumulate in the same order — bit-identity).
  std::vector<QueryId> raw_to_global;
  for (QueryId j = 0; j < workload.num_queries(); ++j) {
    const workload::Query& q = workload.query(j);
    if (table_rank[q.table] == ShardSet::kNoShard) continue;
    std::vector<AttributeId> attrs;
    attrs.reserve(q.attributes.size());
    for (AttributeId a : q.attributes) attrs.push_back(global_to_local[a]);
    auto added = raw.AddQuery(table_rank[q.table], std::move(attrs),
                              q.frequency, q.kind);
    IDXSEL_CHECK(added.ok());
    raw_to_global.push_back(j);
  }
  raw.Finalize();
  out.source_queries = raw.num_queries();

  if (compression.mode == workload::CompressionMode::kNone) {
    out.local = std::move(raw);
    out.query_to_global = std::move(raw_to_global);
  } else {
    workload::CompressedWorkload compressed =
        workload::CompressWorkload(raw, compression);
    out.local = std::move(compressed.workload);
    out.query_to_global.reserve(compressed.representative.size());
    for (QueryId r : compressed.representative) {
      out.query_to_global.push_back(raw_to_global[r]);
    }
  }
  return out;
}

ShardSet PartitionByTable(const workload::Workload& workload, size_t shards,
                          const workload::CompressionOptions& compression) {
  ShardSet set;
  set.table_shard.assign(workload.num_tables(), ShardSet::kNoShard);

  std::vector<char> has_queries(workload.num_tables(), 0);
  for (const workload::Query& q : workload.queries()) {
    has_queries[q.table] = 1;
  }
  size_t query_bearing = 0;
  for (char h : has_queries) query_bearing += h != 0;
  if (query_bearing == 0) return set;

  shards = std::max<size_t>(1, std::min(shards, query_bearing));
  std::vector<std::vector<TableId>> tables_of(shards);
  size_t rank = 0;
  for (TableId t = 0; t < workload.num_tables(); ++t) {
    if (!has_queries[t]) continue;
    const uint32_t s = static_cast<uint32_t>(rank % shards);
    set.table_shard[t] = s;
    tables_of[s].push_back(t);
    ++rank;
  }
  set.shards.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    set.shards.push_back(
        BuildShardWorkload(workload, std::move(tables_of[s]), compression));
  }
  return set;
}

costmodel::Index ShardViewBackend::ToGlobal(const costmodel::Index& k) const {
  std::vector<AttributeId> attrs;
  attrs.reserve(k.width());
  for (AttributeId a : k.attributes()) {
    attrs.push_back(view_->attr_to_global[a]);
  }
  return costmodel::Index(std::move(attrs));
}

double ShardViewBackend::CostWithConfig(
    workload::QueryId j, const costmodel::IndexConfig& config) const {
  std::vector<costmodel::Index> translated;
  translated.reserve(config.size());
  for (const costmodel::Index& k : config.indexes()) {
    translated.push_back(ToGlobal(k));
  }
  return inner_->CostWithConfig(view_->query_to_global[j],
                                costmodel::IndexConfig(std::move(translated)));
}

}  // namespace idxsel::shard
