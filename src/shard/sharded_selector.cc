#include "shard/sharded_selector.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/float_cmp.h"
#include "common/telemetry.h"
#include "exec/thread_pool.h"

namespace idxsel::shard {

using costmodel::Index;
using costmodel::IndexConfig;

namespace {

/// H6's budget tolerance (core/recursive_selector.cc). The arbiter's fit
/// check must be the SAME predicate on the SAME `used` value the global
/// run would hold, or knife-edge moves would flip between the two paths.
constexpr double kEps = 1e-9;

}  // namespace

// ---------------------------------------------------------------------------
// Per-shard state.
// ---------------------------------------------------------------------------

struct ShardedSelector::ShardState {
  std::unique_ptr<ShardViewBackend> view;
  /// Optional decorator from ShardedOptions::wrap_backend (chaos tests).
  std::unique_ptr<costmodel::WhatIfBackend> wrapped;
  std::unique_ptr<costmodel::WhatIfEngine> engine;

  /// The cached per-shard H6 run: `run` holds the trace of a
  /// SelectRecursive call at budget `run_budget` capped at `run_cap`
  /// steps. Valid for answering "what is step m?" iff the budget matches
  /// and either the trace reaches m or it stopped naturally short of the
  /// cap (then no step m exists at this budget).
  core::RecursiveResult run;
  double run_budget = 0.0;
  size_t run_cap = 0;
  bool has_run = false;

  bool dirty = false;

  // Monotone per-state counters (single-writer: one ParallelFor lane or
  // the serial arbitration loop).
  uint64_t runs = 0;
  uint64_t reruns = 0;
  /// Backend calls of engines this state already discarded (rebuilds).
  uint64_t calls_retired = 0;

  uint64_t calls_total() const {
    return calls_retired + (engine ? engine->stats().calls : 0);
  }
};

// ---------------------------------------------------------------------------
// Construction / rebuild.
// ---------------------------------------------------------------------------

ShardedSelector::ShardedSelector(costmodel::WhatIfEngine& engine,
                                 const ShardedOptions& options)
    : engine_(engine), options_(options) {
  set_ = PartitionByTable(engine_.workload(), options_.shards,
                          options_.compression);
  states_.reserve(set_.shards.size());
  for (size_t s = 0; s < set_.shards.size(); ++s) {
    states_.push_back(std::make_unique<ShardState>());
    RebuildShard(s);
    states_[s]->dirty = false;
  }
}

ShardedSelector::~ShardedSelector() = default;

void ShardedSelector::RebuildShard(size_t s) {
  ShardState& st = *states_[s];
  if (st.engine) st.calls_retired += st.engine->stats().calls;
  st.engine.reset();
  st.wrapped.reset();
  st.view.reset();
  // Rebuild the local view from the LIVE workload (frequencies may have
  // shifted); the table list — and hence the partition — never changes
  // for the lifetime of the selector. The slot address is stable (the
  // shard vector is never resized), so borrowing &set_.shards[s] is safe.
  std::vector<workload::TableId> tables = set_.shards[s].tables;
  set_.shards[s] = BuildShardWorkload(engine_.workload(), std::move(tables),
                                      options_.compression);
  st.view = std::make_unique<ShardViewBackend>(&set_.shards[s],
                                               &engine_.backend());
  costmodel::WhatIfBackend* backend = st.view.get();
  if (options_.wrap_backend) {
    st.wrapped = options_.wrap_backend(s, *st.view);
    if (st.wrapped) backend = st.wrapped.get();
  }
  st.engine = std::make_unique<costmodel::WhatIfEngine>(&set_.shards[s].local,
                                                        backend);
  st.run = core::RecursiveResult();
  st.has_run = false;
  st.dirty = false;
}

void ShardedSelector::MarkDirty(workload::TableId table) {
  if (table >= set_.table_shard.size()) return;
  const uint32_t s = set_.table_shard[table];
  if (s == ShardSet::kNoShard) return;
  states_[s]->dirty = true;
}

// ---------------------------------------------------------------------------
// Per-shard runs.
// ---------------------------------------------------------------------------

bool ShardedSelector::EnsureRun(ShardState& st, double run_budget,
                                size_t min_steps) {
  if (st.has_run && st.run.status.ok() &&
      ExactlyEqual(st.run_budget, run_budget) &&
      (st.run.trace.size() >= min_steps ||
       st.run.trace.size() < st.run_cap)) {
    return true;
  }
  if (st.has_run) ++st.reruns;
  ++st.runs;
  core::RecursiveOptions ropts;
  ropts.budget = run_budget;
  // Cap exactly at the step the arbiter needs. Deeper lookahead would be
  // fewer re-runs, but it commits moves the global run may never reach —
  // evaluating candidate sets (and issuing what-if calls) the unsharded
  // run never issues. With cap == need, the union of keys the shard
  // engines consult is EXACTLY the unsharded run's key set, so
  // whatif_calls is invariant across shard counts; the re-runs this costs
  // replay warm-cache prefixes (no backend work). doc/sharding.md §calls.
  ropts.max_steps = min_steps;
  ropts.min_ratio = options_.min_ratio;
  ropts.max_index_width = options_.max_index_width;
  ropts.threads = 1;
  ropts.deadline = deadline_;
  // Inner H6 journals are muted: shards run concurrently and re-runs
  // replay committed prefixes, so raw records would interleave and
  // duplicate. The arbiter emits the canonical records instead.
  telemetry::ScopedJournalSuppress mute;
  st.run = core::SelectRecursive(*st.engine, ropts);
  st.run_budget = run_budget;
  st.run_cap = min_steps;
  st.has_run = true;
  return st.run.status.ok();
}

// ---------------------------------------------------------------------------
// The arbiter.
// ---------------------------------------------------------------------------

namespace {

/// Global-tuple tie-break matching H6's MoveBetter: ratio first (bitwise
/// compare), then lexicographic order of the resulting index. Within one
/// shard the local run already broke ties with the local tuple order,
/// which the order-preserving local->global attribute map makes identical
/// to the global order; across shards the arbiter compares global tuples
/// — together exactly the unsharded comparator.
bool StepBetter(const core::ConstructionStep& a, const Index& a_global,
                const core::ConstructionStep& b, const Index& b_global) {
  if (!ExactlyEqual(a.ratio, b.ratio)) return a.ratio > b.ratio;
  return a_global < b_global;
}

void EmitShardCommit(uint64_t round, const std::string& winner, double ratio,
                     double objective_before, double objective_after,
                     double memory_after) {
  telemetry::JournalEvent event;
  event.strategy = "shard";
  event.action = "commit";
  event.round = round;
  event.winner = winner.c_str();
  event.winner_ratio = ratio;
  // No margin, no candidate list: both would leak how proposals were
  // grouped into shards. Every field below is a function of the committed
  // move sequence only — byte-identical at any shard/thread count.
  event.objective_before = objective_before;
  event.objective_after = objective_after;
  event.memory_after = memory_after;
  telemetry::EmitJournal(event);
}

void EmitShardStop(uint64_t round, double objective, double memory,
                   const char* note) {
  telemetry::JournalEvent event;
  event.strategy = "shard";
  event.action = "stop";
  event.round = round;
  event.objective_after = objective;
  event.memory_after = memory;
  event.note = note;
  telemetry::EmitJournal(event);
}

}  // namespace

ShardedResult ShardedSelector::Select(double budget, double cost_before,
                                      const rt::Deadline& deadline) {
  deadline_ = deadline;
  const size_t num_shards = states_.size();
  ShardedResult out;
  out.stats.shards_used = num_shards;
  telemetry::Add(telemetry::Slot::kShardSelections);
  telemetry::Add(telemetry::Slot::kShardShards,
                 static_cast<int64_t>(num_shards));
  const bool journal = telemetry::JournalActive();
  if (num_shards == 0) {
    out.objective = cost_before;
    if (journal) EmitShardStop(0, out.objective, 0.0, "no-eligible-move");
    return out;
  }

  for (size_t s = 0; s < num_shards; ++s) {
    if (states_[s]->dirty) {
      RebuildShard(s);
      telemetry::Add(telemetry::Slot::kShardDirtyRebuilds);
    }
  }

  std::vector<uint64_t> calls_before(num_shards);
  std::vector<uint64_t> reruns_before(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    calls_before[s] = states_[s]->calls_total();
    reruns_before[s] = states_[s]->reruns;
    out.stats.queries_full += set_.shards[s].source_queries;
    out.stats.queries_compressed += set_.shards[s].local.num_queries();
  }

  // Initial per-shard expansions, in parallel: each shard's first run
  // carries the expensive part (base costs, single-attribute ranking,
  // round-1 evaluation — the bulk of the backend calls). Later re-runs
  // happen serially inside the deterministic arbitration loop, where they
  // replay warm caches.
  {
    const size_t lanes =
        std::min(exec::ResolveThreads(options_.threads), num_shards);
    std::atomic<bool> expired{false};
    auto prefetch = [&](size_t s) {
      if (!EnsureRun(*states_[s], budget, 1)) {
        expired.store(true, std::memory_order_relaxed);
      }
    };
    if (lanes > 1) {
      exec::ThreadPool pool(lanes);
      pool.ParallelFor(num_shards, prefetch, 1);
    } else {
      for (size_t s = 0; s < num_shards; ++s) prefetch(s);
    }
    (void)expired;  // the arbitration loop re-detects per-shard timeouts
  }

  // -- Global mirror of the unsharded run's bookkeeping ---------------------
  // The arbiter replays each committed move's per-query cost updates
  // against its own accumulator, in global commit order, pulling every
  // value from the winning shard's warm engine cache. Starting from the
  // baseline below (the exact FP sum Runner::Run computes), the mirror's
  // objective/used trajectory is bit-identical to the unsharded run's —
  // which makes the trace, the frontier, and the journal records
  // shard-count-invariant, and makes the arbiter's budget check the exact
  // global H6 predicate.
  //
  // Mirror queries are addressed as (shard, local id); the baseline sums
  // in ascending *global representative id* order, which without
  // compression is exactly the unsharded init loop's ascending-j order.
  std::vector<std::vector<double>> best_cost(num_shards);
  std::vector<std::vector<Index>> selected(num_shards);
  std::vector<std::pair<workload::QueryId, uint32_t>> base_order;
  base_order.reserve(engine_.workload().num_queries());
  for (size_t s = 0; s < num_shards; ++s) {
    const ShardWorkload& view = set_.shards[s];
    best_cost[s].resize(view.local.num_queries());
    for (workload::QueryId j = 0; j < view.local.num_queries(); ++j) {
      base_order.emplace_back(view.query_to_global[j],
                              static_cast<uint32_t>(s));
    }
  }
  std::sort(base_order.begin(), base_order.end());
  std::vector<size_t> base_cursor(num_shards, 0);
  double objective = 0.0;
  for (const auto& [global_id, s] : base_order) {
    (void)global_id;
    const workload::QueryId j =
        static_cast<workload::QueryId>(base_cursor[s]++);
    const double base = states_[s]->engine->BaseCost(j);  // cache hit
    best_cost[s][j] = base;
    objective += set_.shards[s].local.query(j).frequency * base;
  }
  double used = 0.0;

  std::vector<size_t> cursor(num_shards, 0);
  std::vector<double> committed(num_shards, 0.0);
  std::vector<char> done(num_shards, 0);
  uint64_t rounds = 0;
  const char* stop_note = "no-eligible-move";
  bool timed_out = false;

  while (out.trace.size() < options_.max_steps) {
    if (deadline.expired()) {
      timed_out = true;
      break;
    }

    // Collect the next-move proposal of every live shard. A proposal
    // computed under a generous budget b >= committed[s] + remaining is
    // the true next move whenever its delta fits `remaining`: shrinking
    // the budget only rejects moves, and a winner that survives the extra
    // rejections is still the winner. On a misfit the shard is re-expanded
    // at the exact marginal budget — the replayed prefix is unchanged (its
    // moves fit by construction) and the fresh step, filtered by the
    // re-run's own budget check, always fits. doc/sharding.md §arbiter.
    size_t best_s = num_shards;
    const core::ConstructionStep* best_step = nullptr;
    Index best_after_global;
    for (size_t s = 0; s < num_shards && !timed_out; ++s) {
      if (done[s]) continue;
      ShardState& st = *states_[s];
      const core::ConstructionStep* proposal = nullptr;
      for (;;) {
        const double want = st.has_run ? st.run_budget : budget;
        if (!EnsureRun(st, want, cursor[s] + 1)) {
          timed_out = true;
          break;
        }
        if (st.run.trace.size() <= cursor[s]) {
          // Exhausted under a budget >= the true marginal budget; since
          // `remaining` only shrinks, this shard is finished for good.
          done[s] = 1;
          break;
        }
        const core::ConstructionStep& step = st.run.trace[cursor[s]];
        if (used + step.memory_delta <= budget + kEps) {  // H6's check
          proposal = &step;
          break;
        }
        const double clamped = committed[s] + (budget - used);
        if (ExactlyEqual(clamped, want)) {
          // Unreachable: a run at the exact marginal budget only proposes
          // fitting steps (its internal check is the arbiter's, shifted
          // by committed[s]). Defensive stop rather than a spin.
          done[s] = 1;
          break;
        }
        if (!EnsureRun(st, clamped, cursor[s] + 1)) {
          timed_out = true;
          break;
        }
      }
      if (proposal == nullptr) continue;
      Index after_global = st.view->ToGlobal(proposal->after);
      if (best_step == nullptr ||
          StepBetter(*proposal, after_global, *best_step,
                     best_after_global)) {
        best_s = s;
        best_step = proposal;
        best_after_global = std::move(after_global);
      }
    }
    if (timed_out) break;
    if (best_step == nullptr) break;  // every shard done

    // -- Commit: mirror core::Runner::Commit for the winning move -----------
    ShardState& st = *states_[best_s];
    const ShardWorkload& view = set_.shards[best_s];
    const workload::Workload& local = view.local;
    costmodel::WhatIfEngine& eng = *st.engine;
    std::vector<double>& best = best_cost[best_s];
    std::vector<Index>& sel = selected[best_s];
    const core::ConstructionStep step = *best_step;  // copy: re-runs invalidate
    IDXSEL_CHECK(step.kind == core::StepKind::kNewSingle ||
                 step.kind == core::StepKind::kAppend);

    const double objective_before = objective;
    objective += eng.MaintenancePenalty(step.after);
    if (step.kind == core::StepKind::kAppend) {
      objective -= eng.MaintenancePenalty(step.before);
    }
    if (step.kind == core::StepKind::kNewSingle) {
      sel.push_back(step.after);
      for (workload::QueryId j : local.queries_with(step.after.leading())) {
        const double c = eng.CostWithIndex(j, step.after);
        if (c < best[j]) {
          objective -= local.query(j).frequency * (best[j] - c);
          best[j] = c;
        }
      }
    } else {
      auto pos = std::find(sel.begin(), sel.end(), step.before);
      IDXSEL_CHECK(pos != sel.end());
      const workload::AttributeId first_appended =
          step.after.attribute(step.before.width());
      *pos = step.after;
      for (workload::QueryId j : local.queries_with(step.before.leading())) {
        const auto& q_attrs = local.query(j).attributes;
        if (!std::binary_search(q_attrs.begin(), q_attrs.end(),
                                first_appended)) {
          continue;
        }
        if (step.before.CoverablePrefixLength(q_attrs) !=
            step.before.width()) {
          continue;
        }
        // RecomputeQuery: base cost plus every applicable selected index
        // of this shard, in selection order. The unsharded run walks its
        // global selection here, but inapplicable (other-table) entries
        // contribute nothing, and this shard's entries appear in the same
        // relative order — identical arithmetic, identical cache hits.
        const double old_best = best[j];
        double b1 = eng.BaseCost(j);
        for (const Index& k : sel) {
          if (!eng.Applicable(j, k)) continue;
          const double c = eng.CostWithIndex(j, k);
          if (c < b1) b1 = c;
        }
        best[j] = b1;
        objective += local.query(j).frequency * (b1 - old_best);
      }
    }
    used += step.memory_delta;
    committed[best_s] += step.memory_delta;
    ++cursor[best_s];
    ++rounds;

    core::ConstructionStep global_step;
    global_step.kind = step.kind;
    if (step.kind == core::StepKind::kAppend) {
      global_step.before = st.view->ToGlobal(step.before);
    }
    global_step.after = std::move(best_after_global);
    global_step.objective_before = objective_before;
    global_step.objective_after = objective;
    global_step.memory_delta = step.memory_delta;
    global_step.ratio = step.ratio;
    if (journal) {
      EmitShardCommit(rounds, global_step.after.ToString(), global_step.ratio,
                      objective_before, objective, used);
    }
    out.trace.push_back(std::move(global_step));
    out.frontier.emplace_back(used, objective);
  }

  if (timed_out) {
    stop_note = "timeout";
    out.status = Status::Timeout("sharded selector: deadline expired");
  } else if (out.trace.size() >= options_.max_steps) {
    stop_note = "max-steps";
  }
  if (journal) EmitShardStop(rounds, objective, used, stop_note);

  for (size_t s = 0; s < num_shards; ++s) {
    for (const Index& k : selected[s]) {
      out.selection.Insert(states_[s]->view->ToGlobal(k));
    }
    out.whatif_calls += states_[s]->calls_total() - calls_before[s];
    out.stats.shard_runs += states_[s]->runs;
    out.stats.reruns += states_[s]->reruns - reruns_before[s];
    if (!states_[s]->engine->health().ok()) {
      ++out.stats.degraded_shards;
      out.degraded = true;
    }
  }
  out.objective = objective;
  out.memory = used;
  out.stats.arbiter_rounds = rounds;
  telemetry::Add(telemetry::Slot::kShardArbiterRounds,
                 static_cast<int64_t>(rounds));
  telemetry::Add(telemetry::Slot::kShardReruns,
                 static_cast<int64_t>(out.stats.reruns));
  telemetry::Add(
      telemetry::Slot::kShardQueriesCompressed,
      static_cast<int64_t>(out.stats.queries_full -
                           out.stats.queries_compressed));
  return out;
}

ShardedResult SelectSharded(costmodel::WhatIfEngine& engine,
                            const ShardedOptions& options, double budget,
                            double cost_before, const rt::Deadline& deadline) {
  ShardedSelector selector(engine, options);
  return selector.Select(budget, cost_before, deadline);
}

}  // namespace idxsel::shard
