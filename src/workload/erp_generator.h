// Synthetic ERP-like workload (substitute for the paper's Fortune-500
// production system, Section IV-A).
//
// The real workload is proprietary; the paper publishes only aggregate
// statistics, which this generator reproduces at identical problem
// dimensions:
//   * 500 tables (the "largest 500 by memory consumption"),
//   * 4204 relevant attributes in total,
//   * table cardinalities between ~350,000 and ~1.5 billion rows,
//   * Q = 2271 query templates, > 50 million weighted executions,
//   * "mostly transactional with a majority of point-access queries but
//     also a few analytical queries".
//
// Structure choices (documented substitutions):
//   * Table sizes are log-uniform over [min_rows, max_rows] with a Zipf-like
//     skew so a handful of huge tables dominate, as in real ERP systems.
//   * Attribute counts per table follow a Zipf(1.0) split of the global
//     attribute budget (wide header tables, narrow auxiliary tables).
//   * Queries pick a table Zipf-skewed by table "heat"; 95% are point-access
//     templates touching 1-4 attributes, 5% analytical touching 4-10.
//   * Within a table, attribute popularity is Zipf-distributed (key columns
//     dominate), producing the strong attribute co-access / index
//     interaction the paper observes on the real system.
//   * Template frequencies are Zipf-distributed and scaled so the weighted
//     execution count matches `total_executions`.

#ifndef IDXSEL_WORKLOAD_ERP_GENERATOR_H_
#define IDXSEL_WORKLOAD_ERP_GENERATOR_H_

#include <cstdint>

#include "workload/workload.h"

namespace idxsel::workload {

/// Dimension knobs; defaults match the published aggregate statistics.
struct ErpWorkloadParams {
  uint32_t num_tables = 500;
  uint32_t total_attributes = 4204;
  uint32_t num_queries = 2271;
  uint64_t min_rows = 350'000;
  uint64_t max_rows = 1'500'000'000;
  double total_executions = 50'000'000.0;
  double point_access_share = 0.95;
  uint64_t seed = 42;
};

/// Generates the ERP-like workload. The result is finalized and validated.
Workload GenerateErpWorkload(const ErpWorkloadParams& params);

}  // namespace idxsel::workload

#endif  // IDXSEL_WORKLOAD_ERP_GENERATOR_H_
