// Workload compression (related work, Section VI).
//
// Large workloads can be pre-processed before index selection: Chaudhuri
// et al. compress by query similarity, while DB2 simply keeps the top-k
// most expensive queries (Zilio et al.). Both reduce selection effort at a
// possible quality loss; bench_compression quantifies the trade-off against
// running Algorithm 1 on the full workload.
//
// v2 (used by idxsel::shard, see doc/sharding.md): template dedup keyed by
// a canonicalized attribute-set signature, plus CoPhy-style
// frequency-weighted clustering. Both operate strictly *per table* — a
// template only ever merges into a template on its own table — so
// compressing a union of tables equals the union of per-table
// compressions. That invariance is what makes the sharded selector's
// per-shard compression independent of how tables are grouped into
// shards. CompressWorkload additionally returns per-query provenance (the
// representative source template of every compressed template) so callers
// can keep translating compressed query ids back to the original workload,
// and selection quality can always be evaluated on the full workload.

#ifndef IDXSEL_WORKLOAD_COMPRESSION_H_
#define IDXSEL_WORKLOAD_COMPRESSION_H_

#include <cstdint>
#include <vector>

#include "workload/workload.h"

namespace idxsel::workload {

/// Merges query templates with identical attribute sets (frequencies add
/// up). Lossless for every cost model of the form sum_j b_j f_j.
Workload MergeDuplicateTemplates(const Workload& workload);

/// Keeps only the `keep` most expensive templates as ranked by
/// `query_costs` (typically b_j * f_j(0) from a cost model); everything
/// else is dropped — the DB2 top-k compression. Schema is preserved.
/// `query_costs` must have one entry per query.
Workload CompressTopK(const Workload& workload,
                      const std::vector<double>& query_costs, size_t keep);

// ---------------------------------------------------------------------------
// Compression v2.
// ---------------------------------------------------------------------------

/// Canonical dedup signature of a query template: two templates are
/// duplicates iff their signatures compare equal. The attribute set is
/// already sorted/unique inside Query, so the signature is just the
/// (table, kind, attribute-set) triple with a total order for use as a
/// deterministic map key.
struct TemplateSignature {
  TableId table = 0;
  QueryKind kind = QueryKind::kRead;
  std::vector<AttributeId> attributes;  ///< sorted, unique

  bool operator==(const TemplateSignature& o) const {
    return table == o.table && kind == o.kind && attributes == o.attributes;
  }
  bool operator<(const TemplateSignature& o) const {
    if (table != o.table) return table < o.table;
    if (kind != o.kind) return kind < o.kind;
    return attributes < o.attributes;
  }
};

/// Signature of query j.
TemplateSignature SignatureOf(const Workload& workload, QueryId j);

enum class CompressionMode {
  kNone,    ///< Identity (queries copied verbatim).
  kDedup,   ///< Signature dedup only; lossless, frequencies add.
  kCluster, ///< Dedup, then frequency-weighted per-table clustering down
            ///< to at most `max_templates_per_table` templates per table
            ///< (lossy: a satellite template's frequency folds into its
            ///< most-similar heavy template).
};

struct CompressionOptions {
  CompressionMode mode = CompressionMode::kDedup;
  /// kCluster: per-table template cap. The `max_templates_per_table`
  /// highest-total-frequency deduped templates of each table become
  /// cluster centers; every other template folds its frequency into the
  /// center with the largest attribute-set overlap (Jaccard; ties resolve
  /// to the heavier, then signature-smaller center). Deterministic.
  size_t max_templates_per_table = 32;
};

/// A compressed workload plus provenance back to its source.
struct CompressedWorkload {
  Workload workload;  ///< Schema identical to the source; fewer queries.
  /// Per compressed query: the *representative* source query id — the
  /// first source template with the compressed template's signature. Its
  /// per-execution costs f_j(.) are exactly the compressed template's
  /// (identical attribute set and table), which is what lets id-mapping
  /// backends answer for compressed queries by delegation.
  std::vector<QueryId> representative;
  size_t source_queries = 0;  ///< Query count of the source workload.

  double ratio() const {
    return source_queries == 0
               ? 1.0
               : static_cast<double>(workload.num_queries()) /
                     static_cast<double>(source_queries);
  }
};

/// Applies `options` to `workload`. The result is finalized and validated;
/// query order is deterministic (ascending representative id) and — per
/// the header comment — independent of how tables are partitioned across
/// calls.
CompressedWorkload CompressWorkload(const Workload& workload,
                                    const CompressionOptions& options);

}  // namespace idxsel::workload

#endif  // IDXSEL_WORKLOAD_COMPRESSION_H_
