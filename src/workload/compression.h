// Workload compression (related work, Section VI).
//
// Large workloads can be pre-processed before index selection: Chaudhuri
// et al. compress by query similarity, while DB2 simply keeps the top-k
// most expensive queries (Zilio et al.). Both reduce selection effort at a
// possible quality loss; bench_compression quantifies the trade-off against
// running Algorithm 1 on the full workload.

#ifndef IDXSEL_WORKLOAD_COMPRESSION_H_
#define IDXSEL_WORKLOAD_COMPRESSION_H_

#include <cstdint>
#include <vector>

#include "workload/workload.h"

namespace idxsel::workload {

/// Merges query templates with identical attribute sets (frequencies add
/// up). Lossless for every cost model of the form sum_j b_j f_j.
Workload MergeDuplicateTemplates(const Workload& workload);

/// Keeps only the `keep` most expensive templates as ranked by
/// `query_costs` (typically b_j * f_j(0) from a cost model); everything
/// else is dropped — the DB2 top-k compression. Schema is preserved.
/// `query_costs` must have one entry per query.
Workload CompressTopK(const Workload& workload,
                      const std::vector<double>& query_costs, size_t keep);

}  // namespace idxsel::workload

#endif  // IDXSEL_WORKLOAD_COMPRESSION_H_
