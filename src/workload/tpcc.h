// The TPC-C query-template workload used by the paper's Figure 1
// illustration ("aggregated distinct conjunctive selections of all TPC-C
// transactions").
//
// This is a reconstruction from the figure: ten templates q1..q10 over the
// STOCK, ORDERS, NEW_ORDER, ORDER_LINE, ITEM, DISTRICT, WAREHOUSE and
// CUSTOMER tables, with TPC-C scale-factor cardinalities (W warehouses).
// Attribute names are exposed so example programs can print readable
// construction traces.

#ifndef IDXSEL_WORKLOAD_TPCC_H_
#define IDXSEL_WORKLOAD_TPCC_H_

#include <string>
#include <vector>

#include "workload/workload.h"

namespace idxsel::workload {

/// Builds the Figure-1 TPC-C workload for `warehouses` warehouses.
NamedWorkload MakeTpccWorkload(uint32_t warehouses = 100);

}  // namespace idxsel::workload

#endif  // IDXSEL_WORKLOAD_TPCC_H_
