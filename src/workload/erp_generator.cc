#include "workload/erp_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace idxsel::workload {
namespace {

// Splits `total` into `parts` positive integers with Zipf(alpha) weights in
// descending order; every part gets at least `floor_per_part`.
std::vector<uint32_t> ZipfSplit(uint32_t total, uint32_t parts, double alpha,
                                uint32_t floor_per_part) {
  IDXSEL_CHECK_GE(total, parts * floor_per_part);
  std::vector<double> weights(parts);
  double sum = 0.0;
  for (uint32_t r = 0; r < parts; ++r) {
    weights[r] = 1.0 / std::pow(static_cast<double>(r + 1), alpha);
    sum += weights[r];
  }
  const uint32_t budget = total - parts * floor_per_part;
  std::vector<uint32_t> out(parts, floor_per_part);
  uint32_t assigned = 0;
  for (uint32_t r = 0; r < parts; ++r) {
    const auto share =
        static_cast<uint32_t>(std::floor(weights[r] / sum * budget));
    out[r] += share;
    assigned += share;
  }
  // Distribute the rounding remainder over the head.
  for (uint32_t r = 0; assigned < budget; r = (r + 1) % parts) {
    ++out[r];
    ++assigned;
  }
  return out;
}

// Draws an index in [0, n) with probability proportional to 1/(i+1)^alpha.
uint32_t ZipfDraw(Rng& rng, const std::vector<double>& cumulative) {
  const double u = rng.NextDouble() * cumulative.back();
  const auto it =
      std::lower_bound(cumulative.begin(), cumulative.end(), u);
  return static_cast<uint32_t>(it - cumulative.begin());
}

std::vector<double> ZipfCumulative(uint32_t n, double alpha) {
  std::vector<double> cumulative(n);
  double acc = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cumulative[i] = acc;
  }
  return cumulative;
}

}  // namespace

Workload GenerateErpWorkload(const ErpWorkloadParams& params) {
  IDXSEL_CHECK_GE(params.total_attributes, params.num_tables);
  Workload w;
  Rng rng(params.seed);

  // -- Tables: Zipf attribute budget, log-uniform sizes, biggest first. ----
  const std::vector<uint32_t> attr_counts =
      ZipfSplit(params.total_attributes, params.num_tables, 1.0,
                /*floor_per_part=*/1);
  const double log_min = std::log(static_cast<double>(params.min_rows));
  const double log_max = std::log(static_cast<double>(params.max_rows));
  for (uint32_t t = 0; t < params.num_tables; ++t) {
    // Skew cardinality with table rank so head tables are also the largest,
    // mirroring "largest 500 tables by memory consumption".
    const double rank_boost =
        1.0 - static_cast<double>(t) / static_cast<double>(params.num_tables);
    const double log_rows =
        log_min + (log_max - log_min) * (0.35 * rng.NextDouble() +
                                         0.65 * rank_boost);
    const auto rows = static_cast<uint64_t>(std::exp(log_rows));
    std::string name = "erp";
    name += std::to_string(t);
    const TableId table = w.AddTable(std::move(name), rows);
    for (uint32_t i = 0; i < attr_counts[t]; ++i) {
      // Key-ish leading columns: near-unique; tail columns low-cardinality.
      const double pos =
          static_cast<double>(i + 1) / static_cast<double>(attr_counts[t] + 1);
      const double frac = std::pow(1.0 - pos, 3.0);  // fast decay
      const uint64_t distinct = std::max<uint64_t>(
          2, static_cast<uint64_t>(static_cast<double>(rows) * frac *
                                   rng.Uniform(0.05, 1.0)));
      const uint32_t value_size = rng.NextDouble() < 0.3 ? 8u : 4u;
      w.AddAttribute(table, distinct, value_size);
    }
  }

  // -- Queries ------------------------------------------------------------
  const std::vector<double> table_heat =
      ZipfCumulative(params.num_tables, 1.2);
  std::vector<std::vector<double>> attr_heat(params.num_tables);
  for (uint32_t t = 0; t < params.num_tables; ++t) {
    attr_heat[t] = ZipfCumulative(
        static_cast<uint32_t>(w.table(t).attributes.size()), 1.1);
  }
  // Zipf template frequencies scaled to the published execution volume.
  std::vector<double> freq(params.num_queries);
  double freq_sum = 0.0;
  for (uint32_t j = 0; j < params.num_queries; ++j) {
    freq[j] = 1.0 / static_cast<double>(j + 1);
    freq_sum += freq[j];
  }
  for (double& f : freq) {
    f = std::max(1.0, std::round(f / freq_sum * params.total_executions));
  }

  for (uint32_t j = 0; j < params.num_queries; ++j) {
    const TableId table = ZipfDraw(rng, table_heat);
    const auto& table_attrs = w.table(table).attributes;
    const bool analytical = rng.NextDouble() >= params.point_access_share;
    const uint32_t max_width = static_cast<uint32_t>(table_attrs.size());
    const uint32_t want =
        std::min(max_width,
                 analytical ? static_cast<uint32_t>(rng.UniformInt(4, 10))
                            : static_cast<uint32_t>(rng.UniformInt(1, 4)));
    std::vector<AttributeId> attrs;
    attrs.reserve(want);
    for (uint32_t k = 0; k < want * 3 && attrs.size() < want; ++k) {
      attrs.push_back(table_attrs[ZipfDraw(rng, attr_heat[table])]);
      std::sort(attrs.begin(), attrs.end());
      attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
    }
    auto added = w.AddQuery(table, std::move(attrs), freq[j]);
    IDXSEL_CHECK(added.ok());
  }

  w.Finalize();
  IDXSEL_CHECK(w.Validate().ok());
  return w;
}

}  // namespace idxsel::workload
