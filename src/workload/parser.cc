#include "workload/parser.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace idxsel::workload {
namespace {

/// Splits a line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : line) {
    if (ch == '#') break;
    if (ch == ' ' || ch == '\t' || ch == '\r') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

/// Splits "key=value"; returns false if there is no '='.
bool SplitKeyValue(const std::string& token, std::string* key,
                   std::string* value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos) return false;
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

Status LineError(size_t line_no, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                 message);
}

bool ParseU64(const std::string& text, uint64_t* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseDouble(const std::string& text, double* out) {
  // std::from_chars<double> is not universally available; istringstream is
  // fine for config-file volumes.
  std::istringstream stream(text);
  stream >> *out;
  return static_cast<bool>(stream) && stream.eof();
}

}  // namespace

Result<NamedWorkload> ParseWorkload(const std::string& text) {
  NamedWorkload named;
  Workload& w = named.workload;

  std::map<std::string, TableId> tables;
  // (table id, attr name) -> attribute id.
  std::map<std::pair<TableId, std::string>, AttributeId> attributes;
  bool have_table = false;
  TableId current_table = 0;
  std::string current_table_name;

  std::istringstream input(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(input, line)) {
    ++line_no;
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& verb = tokens.front();

    if (verb == "table") {
      if (tokens.size() != 3) {
        return LineError(line_no, "expected: table <name> rows=<count>");
      }
      const std::string& name = tokens[1];
      if (tables.count(name)) {
        return LineError(line_no, "duplicate table '" + name + "'");
      }
      std::string key;
      std::string value;
      uint64_t rows = 0;
      if (!SplitKeyValue(tokens[2], &key, &value) || key != "rows" ||
          !ParseU64(value, &rows) || rows == 0) {
        return LineError(line_no, "expected rows=<positive count>");
      }
      current_table = w.AddTable(name, rows);
      current_table_name = name;
      tables[name] = current_table;
      have_table = true;
    } else if (verb == "attr") {
      if (!have_table) {
        return LineError(line_no, "attr before any table");
      }
      if (tokens.size() < 3) {
        return LineError(line_no,
                         "expected: attr <name> distinct=<count> "
                         "[size=<bytes>]");
      }
      const std::string& name = tokens[1];
      if (attributes.count({current_table, name})) {
        return LineError(line_no, "duplicate attribute '" + name + "'");
      }
      uint64_t distinct = 0;
      uint64_t size = 4;
      for (size_t t = 2; t < tokens.size(); ++t) {
        std::string key;
        std::string value;
        if (!SplitKeyValue(tokens[t], &key, &value)) {
          return LineError(line_no, "malformed option '" + tokens[t] + "'");
        }
        if (key == "distinct") {
          if (!ParseU64(value, &distinct) || distinct == 0) {
            return LineError(line_no, "distinct must be a positive count");
          }
        } else if (key == "size") {
          if (!ParseU64(value, &size) || size == 0) {
            return LineError(line_no, "size must be positive bytes");
          }
        } else {
          return LineError(line_no, "unknown attr option '" + key + "'");
        }
      }
      if (distinct == 0) {
        return LineError(line_no, "attr requires distinct=<count>");
      }
      const AttributeId id = w.AddAttribute(
          current_table, distinct, static_cast<uint32_t>(size));
      attributes[{current_table, name}] = id;
      named.attribute_names.push_back(current_table_name + "." + name);
    } else if (verb == "query") {
      if (tokens.size() < 4) {
        return LineError(line_no,
                         "expected: query <table> freq=<n> [write] "
                         "attrs=<a>,<b>,...");
      }
      auto table_it = tables.find(tokens[1]);
      if (table_it == tables.end()) {
        return LineError(line_no, "unknown table '" + tokens[1] + "'");
      }
      const TableId table = table_it->second;
      double freq = 0.0;
      QueryKind kind = QueryKind::kRead;
      std::vector<AttributeId> attrs;
      bool have_attrs = false;
      for (size_t t = 2; t < tokens.size(); ++t) {
        if (tokens[t] == "write") {
          kind = QueryKind::kWrite;
          continue;
        }
        std::string key;
        std::string value;
        if (!SplitKeyValue(tokens[t], &key, &value)) {
          return LineError(line_no, "malformed option '" + tokens[t] + "'");
        }
        if (key == "freq") {
          if (!ParseDouble(value, &freq) || freq <= 0.0) {
            return LineError(line_no, "freq must be positive");
          }
        } else if (key == "attrs") {
          have_attrs = true;
          std::string attr_name;
          std::istringstream attr_stream(value);
          while (std::getline(attr_stream, attr_name, ',')) {
            auto attr_it = attributes.find({table, attr_name});
            if (attr_it == attributes.end()) {
              return LineError(line_no,
                               "unknown attribute '" + attr_name + "'");
            }
            attrs.push_back(attr_it->second);
          }
        } else {
          return LineError(line_no, "unknown query option '" + key + "'");
        }
      }
      if (!(freq > 0.0)) return LineError(line_no, "query requires freq=");
      if (!have_attrs || attrs.empty()) {
        return LineError(line_no, "query requires non-empty attrs=");
      }
      auto added = w.AddQuery(table, std::move(attrs), freq, kind);
      if (!added.ok()) return LineError(line_no, added.status().message());
    } else {
      return LineError(line_no, "unknown directive '" + verb + "'");
    }
  }

  if (!have_table) {
    return Status::InvalidArgument(
        "workload defines no tables (empty or comment-only input)");
  }
  w.Finalize();
  const Status valid = w.Validate();
  if (!valid.ok()) return valid;
  return named;
}

Result<NamedWorkload> LoadWorkloadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseWorkload(buffer.str());
}

Result<std::string> FormatWorkload(const Workload& workload,
                                   const std::vector<std::string>& names) {
  if (names.size() != workload.num_attributes()) {
    return Status::InvalidArgument(
        "attribute name count (" + std::to_string(names.size()) +
        ") does not match workload attributes (" +
        std::to_string(workload.num_attributes()) + ")");
  }
  auto local_name = [&](AttributeId a) {
    const std::string& full = names[a];
    const size_t dot = full.find('.');
    return dot == std::string::npos ? full : full.substr(dot + 1);
  };

  std::string out;
  for (TableId t = 0; t < workload.num_tables(); ++t) {
    const TableSchema& schema = workload.table(t);
    out += "table " + schema.name + " rows=" +
           std::to_string(schema.row_count) + "\n";
    for (AttributeId a : schema.attributes) {
      const AttributeStats& stats = workload.attribute(a);
      out += "attr " + local_name(a) +
             " distinct=" + std::to_string(stats.distinct_values) +
             " size=" + std::to_string(stats.value_size) + "\n";
    }
  }
  for (const Query& q : workload.queries()) {
    out += "query " + workload.table(q.table).name + " freq=";
    // Shortest decimal form that parses back to the exact double:
    // integer-valued frequencies render as before ("1200"), while shifted
    // frequencies from serve deltas survive a Format/Parse round trip
    // bit-identically (checkpoint recovery depends on this).
    char freq[32];
    for (int digits = 15; digits <= 17; ++digits) {
      std::snprintf(freq, sizeof(freq), "%.*g", digits, q.frequency);
      if (std::strtod(freq, nullptr) == q.frequency) break;
    }
    out += freq;
    if (q.kind == QueryKind::kWrite) out += " write";
    out += " attrs=";
    for (size_t u = 0; u < q.attributes.size(); ++u) {
      if (u != 0) out += ',';
      out += local_name(q.attributes[u]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace idxsel::workload
