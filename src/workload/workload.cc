#include "workload/workload.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace idxsel::workload {

TableId Workload::AddTable(std::string name, uint64_t row_count) {
  IDXSEL_CHECK(!finalized_);
  IDXSEL_CHECK_GT(row_count, 0u);
  tables_.push_back(TableSchema{std::move(name), row_count, {}});
  return static_cast<TableId>(tables_.size() - 1);
}

AttributeId Workload::AddAttribute(TableId table, uint64_t distinct_values,
                                   uint32_t value_size) {
  IDXSEL_CHECK(!finalized_);
  IDXSEL_CHECK_LT(table, tables_.size());
  IDXSEL_CHECK_GE(distinct_values, 1u);
  IDXSEL_CHECK_GT(value_size, 0u);
  // Distinct count cannot exceed the table cardinality.
  distinct_values = std::min(distinct_values, tables_[table].row_count);
  const auto id = static_cast<AttributeId>(attributes_.size());
  const auto ordinal = static_cast<uint32_t>(tables_[table].attributes.size());
  attributes_.push_back(
      AttributeStats{table, ordinal, distinct_values, value_size});
  tables_[table].attributes.push_back(id);
  return id;
}

Result<QueryId> Workload::AddQuery(TableId table,
                                   std::vector<AttributeId> attributes,
                                   double frequency, QueryKind kind) {
  IDXSEL_CHECK(!finalized_);
  if (table >= tables_.size()) {
    return Status::InvalidArgument("query references unknown table");
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("query accesses no attributes");
  }
  if (!(frequency > 0.0)) {
    return Status::InvalidArgument("query frequency must be positive");
  }
  std::sort(attributes.begin(), attributes.end());
  attributes.erase(std::unique(attributes.begin(), attributes.end()),
                   attributes.end());
  for (AttributeId a : attributes) {
    if (a >= attributes_.size() || attributes_[a].table != table) {
      return Status::InvalidArgument(
          "query attribute does not belong to the query's table");
    }
  }
  queries_.push_back(Query{table, std::move(attributes), frequency, kind});
  return static_cast<QueryId>(queries_.size() - 1);
}

void Workload::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  queries_with_.assign(attributes_.size(), {});
  for (QueryId j = 0; j < queries_.size(); ++j) {
    for (AttributeId a : queries_[j].attributes) {
      queries_with_[a].push_back(j);
    }
  }
  RecomputeFrequencyStats();
}

void Workload::RecomputeFrequencyStats() {
  occurrence_weight_.assign(attributes_.size(), 0.0);
  size_t total_width = 0;
  total_frequency_ = 0.0;
  for (QueryId j = 0; j < queries_.size(); ++j) {
    const Query& q = queries_[j];
    total_width += q.attributes.size();
    total_frequency_ += q.frequency;
    for (AttributeId a : q.attributes) {
      occurrence_weight_[a] += q.frequency;
    }
  }
  mean_query_width_ =
      queries_.empty()
          ? 0.0
          : static_cast<double>(total_width) / static_cast<double>(queries_.size());
}

Status Workload::UpdateQueryFrequency(QueryId j, double frequency) {
  if (!finalized_) {
    return Status::Internal("UpdateQueryFrequency before Finalize");
  }
  if (j >= queries_.size()) {
    return Status::InvalidArgument("UpdateQueryFrequency: unknown query");
  }
  if (!(frequency > 0.0)) {
    return Status::InvalidArgument("query frequency must be positive");
  }
  queries_[j].frequency = frequency;
  // Recompute (not patch incrementally) so the derived sums are built in
  // exactly the same order — and therefore bit-identical — to a workload
  // parsed fresh from a serve checkpoint holding the same frequencies.
  RecomputeFrequencyStats();
  return Status::Ok();
}

Status Workload::Validate() const {
  if (!finalized_) return Status::Internal("workload not finalized");
  for (size_t t = 0; t < tables_.size(); ++t) {
    if (tables_[t].row_count == 0) {
      return Status::InvalidArgument("table with zero rows");
    }
    for (AttributeId a : tables_[t].attributes) {
      if (a >= attributes_.size() ||
          attributes_[a].table != static_cast<TableId>(t)) {
        return Status::Internal("table/attribute linkage broken");
      }
    }
  }
  for (const AttributeStats& a : attributes_) {
    if (a.distinct_values < 1 ||
        a.distinct_values > tables_[a.table].row_count) {
      return Status::InvalidArgument("attribute distinct count out of range");
    }
  }
  for (const Query& q : queries_) {
    if (q.attributes.empty()) {
      return Status::InvalidArgument("empty query");
    }
    if (!std::is_sorted(q.attributes.begin(), q.attributes.end())) {
      return Status::Internal("query attributes not canonicalized");
    }
    for (AttributeId a : q.attributes) {
      if (attributes_[a].table != q.table) {
        return Status::Internal("query spans tables");
      }
    }
  }
  return Status::Ok();
}

}  // namespace idxsel::workload
