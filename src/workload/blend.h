// Workload blending — scaffolding for the paper's future-work direction
// (Section VII): stochastic workloads that change over time and robust
// selection across anticipated scenarios.
//
// BlendWorkloads mixes two same-schema workloads with scenario weights;
// selecting indexes on the blend optimizes the expected cost over the
// scenario distribution (frequencies are linear in eq. 1, so the blend is
// exactly the expectation). bench_robustness uses it to quantify how a
// selection tuned for yesterday's workload degrades under drift, and how
// much blending recovers.

#ifndef IDXSEL_WORKLOAD_BLEND_H_
#define IDXSEL_WORKLOAD_BLEND_H_

#include "workload/workload.h"

namespace idxsel::workload {

/// Mixes `a` (weight 1 - weight_b) and `b` (weight weight_b) into one
/// workload. Both must share the identical schema (tables/attributes by
/// id); templates occurring in both are merged with blended frequencies.
/// weight_b must lie in [0, 1].
Workload BlendWorkloads(const Workload& a, const Workload& b,
                        double weight_b);

/// True iff the two workloads have identical tables and attributes.
bool SameSchema(const Workload& a, const Workload& b);

}  // namespace idxsel::workload

#endif  // IDXSEL_WORKLOAD_BLEND_H_
