#include "workload/compression.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/check.h"
#include "common/float_cmp.h"

namespace idxsel::workload {
namespace {

/// Copies tables and attributes of `source` into a fresh workload so that
/// all ids stay identical.
Workload CloneSchema(const Workload& source) {
  Workload clone;
  for (TableId t = 0; t < source.num_tables(); ++t) {
    const TableSchema& schema = source.table(t);
    const TableId id = clone.AddTable(schema.name, schema.row_count);
    IDXSEL_CHECK_EQ(id, t);
    for (AttributeId a : schema.attributes) {
      const AttributeStats& stats = source.attribute(a);
      const AttributeId copied =
          clone.AddAttribute(t, stats.distinct_values, stats.value_size);
      IDXSEL_CHECK_EQ(copied, a);
    }
  }
  return clone;
}

}  // namespace

Workload MergeDuplicateTemplates(const Workload& workload) {
  Workload merged = CloneSchema(workload);
  // Reads and writes never merge with each other.
  std::map<std::pair<std::vector<AttributeId>, QueryKind>, double>
      frequency_by_template;
  for (const Query& q : workload.queries()) {
    frequency_by_template[{q.attributes, q.kind}] += q.frequency;
  }
  for (const auto& [key, freq] : frequency_by_template) {
    const auto& [attrs, kind] = key;
    const TableId table = workload.attribute(attrs.front()).table;
    auto added = merged.AddQuery(table, attrs, freq, kind);
    IDXSEL_CHECK(added.ok());
  }
  merged.Finalize();
  IDXSEL_CHECK(merged.Validate().ok());
  return merged;
}

Workload CompressTopK(const Workload& workload,
                      const std::vector<double>& query_costs, size_t keep) {
  IDXSEL_CHECK_EQ(query_costs.size(), workload.num_queries());
  keep = std::min(keep, workload.num_queries());

  std::vector<QueryId> order(workload.num_queries());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](QueryId x, QueryId y) {
    if (!ExactlyEqual(query_costs[x], query_costs[y])) {
      return query_costs[x] > query_costs[y];
    }
    return x < y;
  });
  order.resize(keep);
  std::sort(order.begin(), order.end());  // stable query numbering

  Workload compressed = CloneSchema(workload);
  for (QueryId j : order) {
    const Query& q = workload.query(j);
    auto added =
        compressed.AddQuery(q.table, q.attributes, q.frequency, q.kind);
    IDXSEL_CHECK(added.ok());
  }
  compressed.Finalize();
  IDXSEL_CHECK(compressed.Validate().ok());
  return compressed;
}

}  // namespace idxsel::workload
