#include "workload/compression.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/check.h"
#include "common/float_cmp.h"

namespace idxsel::workload {
namespace {

/// Copies tables and attributes of `source` into a fresh workload so that
/// all ids stay identical.
Workload CloneSchema(const Workload& source) {
  Workload clone;
  for (TableId t = 0; t < source.num_tables(); ++t) {
    const TableSchema& schema = source.table(t);
    const TableId id = clone.AddTable(schema.name, schema.row_count);
    IDXSEL_CHECK_EQ(id, t);
    for (AttributeId a : schema.attributes) {
      const AttributeStats& stats = source.attribute(a);
      const AttributeId copied =
          clone.AddAttribute(t, stats.distinct_values, stats.value_size);
      IDXSEL_CHECK_EQ(copied, a);
    }
  }
  return clone;
}

/// One deduped template during compression.
struct Template {
  TemplateSignature signature;
  double frequency = 0.0;       ///< summed over merged duplicates
  QueryId representative = 0;   ///< first source query with this signature
};

/// |a intersect b| for sorted unique vectors.
size_t IntersectionSize(const std::vector<AttributeId>& a,
                        const std::vector<AttributeId>& b) {
  size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

}  // namespace

TemplateSignature SignatureOf(const Workload& workload, QueryId j) {
  const Query& q = workload.query(j);
  TemplateSignature sig;
  sig.table = q.table;
  sig.kind = q.kind;
  sig.attributes = q.attributes;  // already sorted/unique inside Query
  return sig;
}

Workload MergeDuplicateTemplates(const Workload& workload) {
  Workload merged = CloneSchema(workload);
  // Reads and writes never merge with each other.
  std::map<std::pair<std::vector<AttributeId>, QueryKind>, double>
      frequency_by_template;
  for (const Query& q : workload.queries()) {
    frequency_by_template[{q.attributes, q.kind}] += q.frequency;
  }
  for (const auto& [key, freq] : frequency_by_template) {
    const auto& [attrs, kind] = key;
    const TableId table = workload.attribute(attrs.front()).table;
    auto added = merged.AddQuery(table, attrs, freq, kind);
    IDXSEL_CHECK(added.ok());
  }
  merged.Finalize();
  IDXSEL_CHECK(merged.Validate().ok());
  return merged;
}

Workload CompressTopK(const Workload& workload,
                      const std::vector<double>& query_costs, size_t keep) {
  IDXSEL_CHECK_EQ(query_costs.size(), workload.num_queries());
  keep = std::min(keep, workload.num_queries());

  std::vector<QueryId> order(workload.num_queries());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](QueryId x, QueryId y) {
    if (!ExactlyEqual(query_costs[x], query_costs[y])) {
      return query_costs[x] > query_costs[y];
    }
    return x < y;
  });
  order.resize(keep);
  std::sort(order.begin(), order.end());  // stable query numbering

  Workload compressed = CloneSchema(workload);
  for (QueryId j : order) {
    const Query& q = workload.query(j);
    auto added =
        compressed.AddQuery(q.table, q.attributes, q.frequency, q.kind);
    IDXSEL_CHECK(added.ok());
  }
  compressed.Finalize();
  IDXSEL_CHECK(compressed.Validate().ok());
  return compressed;
}

CompressedWorkload CompressWorkload(const Workload& workload,
                                    const CompressionOptions& options) {
  CompressedWorkload out;
  out.source_queries = workload.num_queries();
  out.workload = CloneSchema(workload);

  if (options.mode == CompressionMode::kNone) {
    for (QueryId j = 0; j < workload.num_queries(); ++j) {
      const Query& q = workload.query(j);
      auto added =
          out.workload.AddQuery(q.table, q.attributes, q.frequency, q.kind);
      IDXSEL_CHECK(added.ok());
      out.representative.push_back(j);
    }
    out.workload.Finalize();
    IDXSEL_CHECK(out.workload.Validate().ok());
    return out;
  }

  // Dedup by signature. The map is ordered by (table, kind, attribute
  // set), which groups templates per table; duplicates are visited in
  // source order, so the summed frequencies are bitwise-deterministic.
  std::map<TemplateSignature, Template> dedup;
  for (QueryId j = 0; j < workload.num_queries(); ++j) {
    TemplateSignature sig = SignatureOf(workload, j);
    auto [it, inserted] = dedup.try_emplace(std::move(sig));
    if (inserted) {
      it->second.signature = it->first;
      it->second.representative = j;
    }
    it->second.frequency += workload.query(j).frequency;
  }

  std::vector<Template> kept;
  kept.reserve(dedup.size());
  auto it = dedup.begin();
  while (it != dedup.end()) {
    const TableId table = it->first.table;
    std::vector<Template> of_table;
    for (; it != dedup.end() && it->first.table == table; ++it) {
      of_table.push_back(it->second);
    }
    if (options.mode == CompressionMode::kCluster &&
        options.max_templates_per_table > 0 &&
        of_table.size() > options.max_templates_per_table) {
      // Cluster-center priority: heavier deduped frequency first,
      // representative id breaking ties.
      std::vector<size_t> rank(of_table.size());
      std::iota(rank.begin(), rank.end(), 0);
      std::sort(rank.begin(), rank.end(), [&](size_t x, size_t y) {
        if (!ExactlyEqual(of_table[x].frequency, of_table[y].frequency)) {
          return of_table[x].frequency > of_table[y].frequency;
        }
        return of_table[x].representative < of_table[y].representative;
      });
      std::vector<size_t> centers(
          rank.begin(),
          rank.begin() + static_cast<long>(options.max_templates_per_table));
      // Folded frequencies accumulate separately: the similarity tie-break
      // below must see only the *original* deduped frequencies, keeping
      // every satellite's assignment independent of fold order.
      std::vector<double> folded(of_table.size(), 0.0);
      for (size_t r = options.max_templates_per_table; r < rank.size();
           ++r) {
        const Template& sat = of_table[rank[r]];
        size_t best = centers.front();
        uint64_t best_inter = 0;
        uint64_t best_union = 1;
        bool first = true;
        for (size_t c : centers) {
          const Template& center = of_table[c];
          const uint64_t inter = IntersectionSize(
              sat.signature.attributes, center.signature.attributes);
          const uint64_t uni = sat.signature.attributes.size() +
                               center.signature.attributes.size() - inter;
          // Exact integer comparison of the Jaccard fractions inter/uni;
          // ties go to the heavier, then signature-earlier center.
          const bool better =
              inter * best_union > best_inter * uni ||
              (inter * best_union == best_inter * uni &&
               (center.frequency > of_table[best].frequency ||
                (ExactlyEqual(center.frequency, of_table[best].frequency) &&
                 center.representative < of_table[best].representative)));
          if (first || better) {
            best = c;
            best_inter = inter;
            best_union = uni;
            first = false;
          }
        }
        folded[best] += sat.frequency;
      }
      // Satellites fold in center-priority order above; adding each
      // center's folded total once keeps the final frequency independent
      // of the center's own rank.
      std::sort(centers.begin(), centers.end(), [&](size_t x, size_t y) {
        return of_table[x].representative < of_table[y].representative;
      });
      for (size_t c : centers) {
        Template t = of_table[c];
        t.frequency += folded[c];
        kept.push_back(std::move(t));
      }
    } else {
      for (Template& t : of_table) kept.push_back(std::move(t));
    }
  }

  // Global output order: ascending representative id — deterministic and
  // independent of how the caller grouped tables.
  std::sort(kept.begin(), kept.end(),
            [](const Template& a, const Template& b) {
              return a.representative < b.representative;
            });
  for (const Template& t : kept) {
    auto added =
        out.workload.AddQuery(t.signature.table, t.signature.attributes,
                              t.frequency, t.signature.kind);
    IDXSEL_CHECK(added.ok());
    out.representative.push_back(t.representative);
  }
  out.workload.Finalize();
  IDXSEL_CHECK(out.workload.Validate().ok());
  return out;
}

}  // namespace idxsel::workload
