#include "workload/tpcc.h"

#include <map>

#include "common/check.h"

namespace idxsel::workload {
namespace {

struct ColumnSpec {
  const char* name;
  uint64_t distinct;
  uint32_t size;
};

}  // namespace

NamedWorkload MakeTpccWorkload(uint32_t warehouses) {
  IDXSEL_CHECK_GT(warehouses, 0u);
  const uint64_t kW = warehouses;
  const uint64_t kDistricts = 10 * kW;
  const uint64_t kCustomers = 3000 * kDistricts;
  const uint64_t kItems = 100'000;
  const uint64_t kStock = kItems * kW;
  const uint64_t kOrders = kCustomers;            // steady state: 1 per cust
  const uint64_t kNewOrders = kOrders * 9 / 30;   // ~30% undelivered
  const uint64_t kOrderLines = kOrders * 10;      // avg 10 lines per order

  NamedWorkload named;
  Workload& w = named.workload;
  std::map<std::string, AttributeId> ids;

  auto add_table = [&](const char* table_name, uint64_t rows,
                       std::vector<ColumnSpec> cols) {
    const TableId t = w.AddTable(table_name, rows);
    for (const ColumnSpec& c : cols) {
      const AttributeId id = w.AddAttribute(t, c.distinct, c.size);
      const std::string full = std::string(table_name) + "." + c.name;
      ids[full] = id;
      named.attribute_names.push_back(full);
    }
    return t;
  };

  const TableId stock =
      add_table("STOCK", kStock,
                {{"W_ID", kW, 4}, {"I_ID", kItems, 4}, {"QTY", 100, 4}});
  const TableId ord =
      add_table("ORD", kOrders,
                {{"ID", 3000, 4},
                 {"W_ID", kW, 4},
                 {"D_ID", 10, 4},
                 {"C_ID", 3000, 4},
                 {"CARRIER_ID", 10, 4}});
  const TableId n_ord =
      add_table("N_ORD", kNewOrders,
                {{"W_ID", kW, 4}, {"D_ID", 10, 4}, {"O_ID", 3000, 4}});
  const TableId ordln =
      add_table("ORDLN", kOrderLines,
                {{"W_ID", kW, 4},
                 {"D_ID", 10, 4},
                 {"O_ID", 3000, 4},
                 {"NUMBER", 15, 4}});
  const TableId item = add_table("ITEM", kItems, {{"ID", kItems, 4}});
  const TableId dist =
      add_table("DIST", kDistricts, {{"W_ID", kW, 4}, {"ID", 10, 4}});
  const TableId whous = add_table("WHOUS", kW, {{"ID", kW, 4}});
  const TableId cust =
      add_table("CUST", kCustomers,
                {{"W_ID", kW, 4}, {"D_ID", 10, 4}, {"ID", 3000, 4}});

  auto a = [&](const std::string& full) {
    auto it = ids.find(full);
    IDXSEL_CHECK(it != ids.end());
    return it->second;
  };
  auto add_query = [&](TableId t, std::vector<AttributeId> attrs,
                       double freq) {
    auto added = w.AddQuery(t, std::move(attrs), freq);
    IDXSEL_CHECK(added.ok());
  };

  // q1..q10 — the aggregated conjunctive selections of Figure 1, with
  // frequencies reflecting the TPC-C transaction mix (new-order/payment
  // heavy, stock-level/delivery light).
  add_query(stock, {a("STOCK.W_ID"), a("STOCK.I_ID"), a("STOCK.QTY")}, 430);
  add_query(ord, {a("ORD.ID"), a("ORD.W_ID"), a("ORD.D_ID")}, 40);
  add_query(cust, {a("CUST.W_ID"), a("CUST.ID")}, 450);
  add_query(n_ord, {a("N_ORD.W_ID"), a("N_ORD.D_ID"), a("N_ORD.O_ID")}, 40);
  add_query(stock, {a("STOCK.I_ID"), a("STOCK.W_ID")}, 450);
  add_query(ordln,
            {a("ORDLN.W_ID"), a("ORDLN.D_ID"), a("ORDLN.O_ID"),
             a("ORDLN.NUMBER")},
            40);
  add_query(item, {a("ITEM.ID")}, 450);
  add_query(whous, {a("WHOUS.ID")}, 440);
  add_query(ord, {a("ORD.C_ID"), a("ORD.W_ID"), a("ORD.D_ID")}, 40);
  add_query(dist, {a("DIST.W_ID"), a("DIST.ID")}, 470);

  w.Finalize();
  IDXSEL_CHECK(w.Validate().ok());
  return named;
}

}  // namespace idxsel::workload
