// Textual workload format and parser.
//
// Lets users describe a tuning problem in a plain file instead of calling
// the builder API — the library-consumer entry point for real systems that
// export their schema and query statistics. Line-oriented grammar:
//
//   # comment (also after '#' mid-line); blank lines ignored
//   table <name> rows=<count>
//   attr <name> distinct=<count> [size=<bytes>]       # on the last table
//   query <table> freq=<number> [write] attrs=<a>,<b>,...
//
// Attribute names are table-scoped; `query` references them unqualified.
// Errors carry 1-based line numbers ("line 7: unknown attribute 'statsu'").

#ifndef IDXSEL_WORKLOAD_PARSER_H_
#define IDXSEL_WORKLOAD_PARSER_H_

#include <string>

#include "common/status.h"
#include "workload/workload.h"

namespace idxsel::workload {

/// Parses a workload description; the result is finalized and validated.
/// Inputs that define no table at all (empty file, comments only) are
/// rejected with kInvalidArgument — a tuning problem needs a schema.
Result<NamedWorkload> ParseWorkload(const std::string& text);

/// Reads `path` and parses it.
Result<NamedWorkload> LoadWorkloadFile(const std::string& path);

/// Renders `workload` back into the textual format (round-trips through
/// ParseWorkload). `names` must be indexed by AttributeId (pass the names
/// from a NamedWorkload or synthesize them); a mismatched name count is
/// reported as kInvalidArgument, not a process abort — callers feeding
/// user-assembled names get an error they can handle.
Result<std::string> FormatWorkload(const Workload& workload,
                                   const std::vector<std::string>& names);

}  // namespace idxsel::workload

#endif  // IDXSEL_WORKLOAD_PARSER_H_
