// Workload data model: tables, attributes, and query templates.
//
// Mirrors the paper's model (Section II-A): a system with N attributes and Q
// query templates; each query q_j is a set of accessed attributes on one
// table with an execution frequency b_j. Attributes carry the statistics the
// cost model needs (row count via their table, distinct count d_i, value
// size a_i).

#ifndef IDXSEL_WORKLOAD_WORKLOAD_H_
#define IDXSEL_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace idxsel::workload {

using AttributeId = uint32_t;  ///< Global attribute id, dense in [0, N).
using TableId = uint32_t;      ///< Table id, dense in [0, T).
using QueryId = uint32_t;      ///< Query-template id, dense in [0, Q).

inline constexpr AttributeId kInvalidAttribute = ~AttributeId{0};

/// Per-attribute statistics used by cost models and heuristics.
struct AttributeStats {
  TableId table = 0;
  uint32_t ordinal = 0;         ///< Position within its table (0-based).
  uint64_t distinct_values = 1; ///< d_i >= 1.
  uint32_t value_size = 4;      ///< a_i, bytes per value.

  /// Selectivity s_i = 1/d_i (Definition 1 / notation table).
  double selectivity() const {
    return 1.0 / static_cast<double>(distinct_values);
  }
};

/// Table schema: name, cardinality, and its attribute ids.
struct TableSchema {
  std::string name;
  uint64_t row_count = 0;               ///< n_t.
  std::vector<AttributeId> attributes;  ///< Global ids, in ordinal order.
};

/// What a query template does; the paper's model admits "selection, join,
/// insert, update, etc." (Section II-A). Reads benefit from indexes;
/// writes additionally pay maintenance on every index covering a written
/// attribute.
enum class QueryKind {
  kRead,   ///< Conjunctive selection on the accessed attributes.
  kWrite,  ///< Point update of the accessed attributes.
};

/// A query template q_j: the set of attributes it accesses (conjunctive
/// point/range predicates, exactly as the paper abstracts queries) and its
/// observed execution frequency b_j.
struct Query {
  TableId table = 0;
  std::vector<AttributeId> attributes;  ///< Sorted, unique, non-empty.
  double frequency = 1.0;               ///< b_j > 0.
  QueryKind kind = QueryKind::kRead;
};

/// Immutable-after-build container for a full workload.
///
/// Built incrementally via AddTable / AddAttribute / AddQuery; consumers
/// treat it as read-only. All derived statistics (attribute occurrence
/// weights g_i, the query inverted index, average query width q-bar) are
/// computed lazily-but-once by Finalize(), which every generator calls.
class Workload {
 public:
  /// Registers a table; returns its id.
  TableId AddTable(std::string name, uint64_t row_count);

  /// Registers an attribute on `table`; returns its global id.
  AttributeId AddAttribute(TableId table, uint64_t distinct_values,
                           uint32_t value_size);

  /// Registers a query template. `attributes` may be unsorted / contain
  /// duplicates; they are canonicalized. All attributes must belong to
  /// `table`. Returns the query id, or an error on malformed input.
  Result<QueryId> AddQuery(TableId table, std::vector<AttributeId> attributes,
                           double frequency,
                           QueryKind kind = QueryKind::kRead);

  /// Computes derived statistics. Must be called once after the last
  /// AddQuery and before any consumer runs. Idempotent.
  void Finalize();

  /// Replaces b_j in place on a finalized workload and incrementally
  /// refreshes the derived statistics that depend on it (occurrence
  /// weights g_i, total frequency). The structural invariants — attribute
  /// sets, posting lists, query ids — are untouched, which is what lets
  /// idxsel::serve apply frequency-shift deltas without rebuilding the
  /// what-if caches (per-execution costs f_j(k) are frequency-free; only
  /// frequency-weighted aggregates change — see doc/serve.md). Requires
  /// Finalize() to have run and frequency > 0. NOT thread-safe: callers
  /// must quiesce every reader (engines, strategies) first.
  Status UpdateQueryFrequency(QueryId j, double frequency);

  // -- Dimensions ----------------------------------------------------------
  size_t num_tables() const { return tables_.size(); }
  size_t num_attributes() const { return attributes_.size(); }
  size_t num_queries() const { return queries_.size(); }

  // -- Element access ------------------------------------------------------
  const TableSchema& table(TableId t) const { return tables_[t]; }
  const AttributeStats& attribute(AttributeId i) const {
    return attributes_[i];
  }
  const Query& query(QueryId j) const { return queries_[j]; }
  const std::vector<TableSchema>& tables() const { return tables_; }
  const std::vector<Query>& queries() const { return queries_; }

  /// Row count of the table owning attribute `i`.
  uint64_t rows_of(AttributeId i) const {
    return tables_[attributes_[i].table].row_count;
  }

  // -- Derived statistics (valid after Finalize) ---------------------------

  /// g_i: frequency-weighted number of occurrences of attribute i across the
  /// workload (Definition 1, heuristic H1).
  double occurrence_weight(AttributeId i) const {
    return occurrence_weight_[i];
  }

  /// Queries whose attribute set contains attribute i.
  const std::vector<QueryId>& queries_with(AttributeId i) const {
    return queries_with_[i];
  }

  /// q-bar: average number of attributes accessed per query.
  double mean_query_width() const { return mean_query_width_; }

  /// Sum of all query frequencies b_j.
  double total_frequency() const { return total_frequency_; }

  /// Checks structural invariants; returns the first violation found.
  Status Validate() const;

 private:
  std::vector<TableSchema> tables_;
  std::vector<AttributeStats> attributes_;
  std::vector<Query> queries_;

  /// Rebuilds the frequency-derived sums (g_i, total frequency, q-bar)
  /// from scratch in query order; shared by Finalize and
  /// UpdateQueryFrequency so both paths produce bit-identical stats.
  void RecomputeFrequencyStats();

  bool finalized_ = false;
  std::vector<double> occurrence_weight_;
  std::vector<std::vector<QueryId>> queries_with_;
  double mean_query_width_ = 0.0;
  double total_frequency_ = 0.0;
};

/// A workload plus display names for its attributes ("TABLE.ATTR"),
/// produced by the TPC-C builder and the workload-file parser.
struct NamedWorkload {
  Workload workload;
  std::vector<std::string> attribute_names;  ///< Indexed by AttributeId.

  /// "TABLE.ATTR" for attribute `i`.
  const std::string& name(AttributeId i) const { return attribute_names[i]; }
};

}  // namespace idxsel::workload

#endif  // IDXSEL_WORKLOAD_WORKLOAD_H_
