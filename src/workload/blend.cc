#include "workload/blend.h"

#include <map>

#include "common/check.h"

namespace idxsel::workload {

bool SameSchema(const Workload& a, const Workload& b) {
  if (a.num_tables() != b.num_tables() ||
      a.num_attributes() != b.num_attributes()) {
    return false;
  }
  for (TableId t = 0; t < a.num_tables(); ++t) {
    if (a.table(t).row_count != b.table(t).row_count ||
        a.table(t).attributes != b.table(t).attributes) {
      return false;
    }
  }
  for (AttributeId i = 0; i < a.num_attributes(); ++i) {
    const AttributeStats& x = a.attribute(i);
    const AttributeStats& y = b.attribute(i);
    if (x.table != y.table || x.distinct_values != y.distinct_values ||
        x.value_size != y.value_size) {
      return false;
    }
  }
  return true;
}

Workload BlendWorkloads(const Workload& a, const Workload& b,
                        double weight_b) {
  IDXSEL_CHECK(SameSchema(a, b));
  IDXSEL_CHECK_GE(weight_b, 0.0);
  IDXSEL_CHECK_LE(weight_b, 1.0);

  Workload blend;
  for (TableId t = 0; t < a.num_tables(); ++t) {
    blend.AddTable(a.table(t).name, a.table(t).row_count);
    for (AttributeId i : a.table(t).attributes) {
      blend.AddAttribute(t, a.attribute(i).distinct_values,
                         a.attribute(i).value_size);
    }
  }

  // Merge templates: key = (attributes, kind); blended frequency.
  std::map<std::pair<std::vector<AttributeId>, QueryKind>, double> merged;
  for (const Query& q : a.queries()) {
    merged[{q.attributes, q.kind}] += (1.0 - weight_b) * q.frequency;
  }
  for (const Query& q : b.queries()) {
    merged[{q.attributes, q.kind}] += weight_b * q.frequency;
  }
  for (const auto& [key, freq] : merged) {
    if (!(freq > 0.0)) continue;  // one endpoint weight can zero a side
    const auto& [attrs, kind] = key;
    const TableId table = a.attribute(attrs.front()).table;
    auto added = blend.AddQuery(table, attrs, freq, kind);
    IDXSEL_CHECK(added.ok());
  }
  blend.Finalize();
  IDXSEL_CHECK(blend.Validate().ok());
  return blend;
}

}  // namespace idxsel::workload
