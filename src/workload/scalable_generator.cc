#include "workload/scalable_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace idxsel::workload {

Workload GenerateScalableWorkload(const ScalableWorkloadParams& params) {
  IDXSEL_CHECK_GT(params.num_tables, 0u);
  IDXSEL_CHECK_GT(params.attributes_per_table, 0u);
  Workload w;
  Rng root(params.seed);

  const double nt_attrs = params.attributes_per_table;
  for (uint32_t t = 1; t <= params.num_tables; ++t) {
    Rng rng = root.Fork();
    uint64_t rows = params.rows_per_table_step * t;
    if (params.rows_per_table_cap != 0) {
      rows = std::min(rows, params.rows_per_table_cap);
    }
    std::string name = "t";
    name += std::to_string(t);
    const TableId table = w.AddTable(std::move(name), rows);

    // Attributes: d_{t,i} = round(Uniform(0.5, n_t * ((N-i+1)/(N+1))^0.2)).
    for (uint32_t i = 1; i <= params.attributes_per_table; ++i) {
      const double shrink =
          std::pow((nt_attrs - i + 1.0) / (nt_attrs + 1.0), 0.2);
      const double upper = static_cast<double>(rows) * shrink;
      uint64_t distinct =
          static_cast<uint64_t>(std::max<int64_t>(1, rng.RoundUniform(0.5, upper)));
      const uint32_t value_size = rng.NextDouble() < 0.5 ? 4u : 8u;
      w.AddAttribute(table, distinct, value_size);
    }

    // Queries: Z draws of skewed attribute ordinals, duplicates collapse.
    const double ordinal_upper = std::pow(nt_attrs, 1.0 / 0.3);
    for (uint32_t j = 0; j < params.queries_per_table; ++j) {
      const int64_t z = std::max<int64_t>(1, rng.RoundUniform(0.5, 10.5));
      std::vector<AttributeId> attrs;
      attrs.reserve(static_cast<size_t>(z));
      for (int64_t k = 0; k < z; ++k) {
        const double draw = rng.Uniform(1.0, ordinal_upper);
        int64_t ordinal = static_cast<int64_t>(std::llround(std::pow(draw, 0.3)));
        ordinal = std::clamp<int64_t>(ordinal, 1, params.attributes_per_table);
        attrs.push_back(
            w.table(table).attributes[static_cast<size_t>(ordinal - 1)]);
      }
      const double freq = static_cast<double>(rng.RoundUniform(1.0, 10'000.0));
      const QueryKind kind = rng.NextDouble() < params.write_share
                                 ? QueryKind::kWrite
                                 : QueryKind::kRead;
      auto added =
          w.AddQuery(table, std::move(attrs), std::max(1.0, freq), kind);
      IDXSEL_CHECK(added.ok());
    }
  }

  w.Finalize();
  IDXSEL_CHECK(w.Validate().ok());
  return w;
}

}  // namespace idxsel::workload
