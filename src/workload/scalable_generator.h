// Appendix C: the paper's reproducible scalable workload (Example 1).
//
// T tables; table t has N_t attributes, Q_t query templates and
// n_t = t * 1,000,000 rows (scalable via `rows_per_table_step`). Distinct
// counts fall with the attribute ordinal, query attribute draws are skewed
// towards high ordinals, and frequencies are uniform in [1, 10000] — all
// verbatim from the paper's formulas:
//
//   d_{t,i} = round(Uniform(0.5, n_t * ((N_t - i + 1)/(N_t + 1))^0.2))
//   Z_{t,j} = round(Uniform(0.5, 10.5))
//   q_{t,j} = U_{k=1..Z} { round(Uniform(1, N_t^(1/0.3))^0.3) }
//   b_{t,j} = round(Uniform(1, 10000))
//
// Attribute value sizes a_i are not specified by the paper; we draw them
// from {4, 8} bytes (typical integer column widths), deterministically.

#ifndef IDXSEL_WORKLOAD_SCALABLE_GENERATOR_H_
#define IDXSEL_WORKLOAD_SCALABLE_GENERATOR_H_

#include <cstdint>

#include "common/random.h"
#include "workload/workload.h"

namespace idxsel::workload {

/// Parameters of the Appendix-C generator. Defaults reproduce Example 1
/// with Q_t = 100 per table (Section III varies Q_t from 50 to 5000).
struct ScalableWorkloadParams {
  uint32_t num_tables = 10;           ///< T.
  uint32_t attributes_per_table = 50; ///< N_t.
  uint32_t queries_per_table = 100;   ///< Q_t.
  /// n_t = t * rows_per_table_step, t = 1..T. The paper uses 1,000,000.
  uint64_t rows_per_table_step = 1'000'000;
  /// Upper clamp on n_t (0 = uncapped). The paper's linear row growth is
  /// harmless at its T <= 10 but reaches 5 * 10^10 rows at T = 50,000;
  /// the 100x-scale benchmarks cap it so per-table statistics stay in the
  /// regime the cost model was written for while T (and the template
  /// count) keeps scaling.
  uint64_t rows_per_table_cap = 0;
  /// Fraction of templates generated as point-write (update) queries; the
  /// paper's Example 1 is read-only (0.0), the update-cost ablation raises
  /// it.
  double write_share = 0.0;
  uint64_t seed = 7;                  ///< PRNG seed; same seed => same workload.
};

/// Generates the Example-1 workload. The result is finalized and validated.
Workload GenerateScalableWorkload(const ScalableWorkloadParams& params);

}  // namespace idxsel::workload

#endif  // IDXSEL_WORKLOAD_SCALABLE_GENERATOR_H_
