#include "exec/thread_pool.h"

#include <algorithm>
#include <cstdlib>

// Pool counters go through the dependency-free telemetry slots: the
// layering DAG forbids exec -> obs, and obs bridges the slots into every
// Registry snapshot under the "idxsel.exec.*" names (doc/observability.md).
#include "common/telemetry.h"

namespace idxsel::exec {

size_t DefaultThreads() {
  static const size_t resolved = [] {
    if (const char* env = std::getenv("IDXSEL_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) return std::min<size_t>(static_cast<size_t>(v), kMaxThreads);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return std::min<size_t>(std::max(1u, hw), kMaxThreads);
  }();
  return resolved;
}

size_t ResolveThreads(size_t requested) {
  if (requested == 0) return DefaultThreads();
  return std::min(std::max<size_t>(requested, 1), kMaxThreads);
}

ThreadPool::ThreadPool(size_t threads)
    : threads_(std::min(std::max<size_t>(threads, 1), kMaxThreads)) {
  const size_t workers = threads_ - 1;
  queues_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Taking the sleep mutex orders the notify after any in-flight
    // predicate evaluation, so no worker can sleep through shutdown.
    common::MutexLock lock(&sleep_mu_);
  }
  sleep_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool(DefaultThreads());
  static const bool gauge_published = [] {
    telemetry::Set(telemetry::Slot::kExecPoolThreads,
                   static_cast<int64_t>(pool.size()));
    return true;
  }();
  (void)gauge_published;
  return pool;
}

void ThreadPool::Push(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    telemetry::Add(telemetry::Slot::kExecTasks);
    return;
  }
  const size_t victim =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    common::MutexLock lock(&queues_[victim]->mu);
    queues_[victim]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    // See ~ThreadPool: the empty critical section prevents the lost-wakeup
    // window between a sleeper's predicate check and its wait.
    common::MutexLock lock(&sleep_mu_);
  }
  sleep_cv_.NotifyOne();
}

bool ThreadPool::TryRun(size_t self) {
  std::function<void()> task;
  // Own deque first, newest task (LIFO: still-warm working set).
  {
    WorkerQueue& q = *queues_[self];
    common::MutexLock lock(&q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
    }
  }
  const bool stolen = !task;
  if (!task) {
    // Steal the oldest task of the first non-empty victim (FIFO: the
    // entry the owner is least likely to touch soon).
    for (size_t off = 1; off < queues_.size() && !task; ++off) {
      WorkerQueue& q = *queues_[(self + off) % queues_.size()];
      common::MutexLock lock(&q.mu);
      if (!q.tasks.empty()) {
        task = std::move(q.tasks.front());
        q.tasks.pop_front();
      }
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  task();
  telemetry::Add(telemetry::Slot::kExecTasks);
  if (stolen) telemetry::Add(telemetry::Slot::kExecSteals);
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  while (true) {
    if (TryRun(self)) continue;
    common::MutexLock lock(&sleep_mu_);
    sleep_cv_.Wait(sleep_mu_, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body,
                             size_t grain) {
  telemetry::Add(telemetry::Slot::kExecParallelFors);
  if (n == 0) return;
  if (threads_ == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  if (grain == 0) {
    // ~4 chunks per lane: enough slack to rebalance around skewed
    // iteration costs without drowning in cursor traffic.
    grain = std::max<size_t>(1, n / (threads_ * 4));
  }

  struct LoopState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    // idxsel-lint: allow(guarded-field) reason=wakeup-ordering mutex only;
    // `done` stays atomic so the caller lane can poll it lock-free
    common::Mutex mu;
    common::CondVar cv;
  };
  auto state = std::make_shared<LoopState>();

  // `body` is captured by value: a helper task that only gets scheduled
  // after the caller already drained the loop (and returned) must not
  // touch a dangling reference.
  auto drain = [state, n, grain, body]() {
    size_t completed = 0;
    while (true) {
      const size_t begin = state->next.fetch_add(grain,
                                                 std::memory_order_relaxed);
      if (begin >= n) break;
      const size_t end = std::min(n, begin + grain);
      for (size_t i = begin; i < end; ++i) body(i);
      completed += end - begin;
    }
    if (completed != 0 &&
        state->done.fetch_add(completed, std::memory_order_acq_rel) +
                completed ==
            n) {
      common::MutexLock lock(&state->mu);
      state->cv.NotifyAll();
    }
  };

  // One helper per worker lane; each drains chunks until the cursor runs
  // out. Helpers that never get scheduled before the caller finishes see
  // an exhausted cursor and return immediately.
  const size_t helpers = std::min(threads_ - 1, (n + grain - 1) / grain - 1);
  for (size_t h = 0; h < helpers; ++h) Push(drain);

  // The caller is a full lane: this both does its share of the work and
  // guarantees completion even when every worker is busy elsewhere
  // (nested loops, portfolio racing).
  drain();

  common::MutexLock lock(&state->mu);
  state->cv.Wait(state->mu, [&] {
    return state->done.load(std::memory_order_acquire) == n;
  });
}

}  // namespace idxsel::exec
