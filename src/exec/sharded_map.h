// N-way sharded concurrent hash map — the cache structure behind the
// concurrency-safe WhatIfEngine.
//
// Each shard is a plain unordered_map behind its own mutex; a key's shard
// is chosen from the *high* bits of its (SplitMix64-mixed) hash so that
// shard choice and the unordered_map's bucket mask (low bits) never
// correlate. GetOrCompute holds the shard lock across the compute
// callback, which gives exactly-once semantics per key: concurrent
// requests for the same key serialize on the shard and all but the first
// observe a cache hit. That is what keeps WhatIfEngine's call accounting
// deterministic under parallel selection (doc/parallelism.md).
//
// The lock-across-compute tradeoff: a slow compute (measured what-if
// backend) blocks other keys of the same shard. With 32 shards and the
// pipeline's key-uniform hashes the collision probability per concurrent
// pair is ~3%; the alternative (insert-then-compute) would double backend
// calls under contention — the costlier failure mode here, since backend
// calls are the paper's unit of cost. Compute callbacks must not re-enter
// the same map (deadlock on the shard mutex).

#ifndef IDXSEL_EXEC_SHARDED_MAP_H_
#define IDXSEL_EXEC_SHARDED_MAP_H_

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace idxsel::exec {

/// Concurrent map with per-shard mutexes and exactly-once value
/// computation. `kShards` must be a power of two.
template <typename Key, typename Value, typename Hash, size_t kShards = 32>
class ShardedMap {
  static_assert((kShards & (kShards - 1)) == 0, "shard count: power of two");

 public:
  /// Looks up `key`; when absent, computes it via `compute()` *under the
  /// shard lock* and inserts. Returns {value, hit}: hit is false for the
  /// caller that computed, true for everyone else — exactly one compute
  /// per distinct key, ever.
  template <typename ComputeFn>
  std::pair<Value, bool> GetOrCompute(const Key& key, ComputeFn&& compute) {
    Shard& shard = ShardFor(key);
    common::MutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) return {it->second, true};
    Value value = compute();
    shard.map.emplace(key, value);
    return {value, false};
  }

  /// Lock-and-read; returns true and copies the value when present.
  bool Get(const Key& key, Value* out) const {
    const Shard& shard = ShardFor(key);
    common::MutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    *out = it->second;
    return true;
  }

  /// Total entries across shards (momentary snapshot).
  size_t Size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      common::MutexLock lock(&shard.mu);
      total += shard.map.size();
    }
    return total;
  }

  /// Drops every entry; returns how many were erased (for obs gauge
  /// adjustment by the owner).
  size_t Clear() {
    size_t erased = 0;
    for (Shard& shard : shards_) {
      common::MutexLock lock(&shard.mu);
      erased += shard.map.size();
      shard.map.clear();
    }
    return erased;
  }

  /// Pre-sizes every shard for ~`total` entries overall.
  void Reserve(size_t total) {
    const size_t per_shard = total / kShards + 1;
    for (Shard& shard : shards_) {
      common::MutexLock lock(&shard.mu);
      shard.map.reserve(per_shard);
    }
  }

  static constexpr size_t shard_count() { return kShards; }

  /// Shard index a key maps to (exposed for the collision-distribution
  /// tests).
  static size_t ShardIndex(const Key& key) {
    if constexpr (kShards == 1) {
      return 0;
    } else {
      // High bits: independent of the low bits unordered_map buckets use.
      return SplitMix64(Hash{}(key)) >> (64 - kShardBits);
    }
  }

 private:
  static constexpr size_t kShardBits = [] {
    size_t bits = 0;
    for (size_t s = kShards; s > 1; s >>= 1) ++bits;
    return bits;
  }();

  struct Shard {
    mutable common::Mutex mu;
    std::unordered_map<Key, Value, Hash> map IDXSEL_GUARDED_BY(mu);
  };

  Shard& ShardFor(const Key& key) { return shards_[ShardIndex(key)]; }
  const Shard& ShardFor(const Key& key) const {
    return shards_[ShardIndex(key)];
  }

  Shard shards_[kShards];
};

}  // namespace idxsel::exec

#endif  // IDXSEL_EXEC_SHARDED_MAP_H_
