// Thread-safe amortized deadline polling — the parallel counterpart of
// rt::DeadlinePoller.
//
// rt::DeadlinePoller keeps a private call counter and a latched verdict,
// which is exactly right for one thread and exactly wrong for a parallel
// loop: the counter would race and the latch would be invisible across
// lanes. SharedDeadlinePoller shares both through relaxed atomics: every
// lane's Expired() ticks one shared counter, every `stride`-th tick reads
// the clock, and the first expiry latches for everyone — so a ParallelFor
// shard observing the deadline stops all lanes from issuing further work
// within one stride. Like its serial sibling, expiry is one-way until the
// poller is destroyed.

#ifndef IDXSEL_EXEC_SHARED_DEADLINE_H_
#define IDXSEL_EXEC_SHARED_DEADLINE_H_

#include <atomic>
#include <cstdint>

#include "common/deadline.h"

namespace idxsel::exec {

/// Amortized, latching view of one rt::Deadline, shared by every lane of a
/// parallel stage. The referenced deadline must outlive the poller.
class SharedDeadlinePoller {
 public:
  /// `stride` must be a power of two.
  explicit SharedDeadlinePoller(const rt::Deadline& deadline,
                                uint32_t stride = 64)
      : deadline_(&deadline), mask_(stride - 1) {}

  SharedDeadlinePoller(const SharedDeadlinePoller&) = delete;
  SharedDeadlinePoller& operator=(const SharedDeadlinePoller&) = delete;

  /// Counts one unit of work; every `stride` units (across all lanes
  /// combined) consults the deadline. Once expired, stays expired and
  /// stops consulting the clock.
  bool Expired() {
    if (expired_.load(std::memory_order_relaxed)) return true;
    const uint32_t tick = calls_.fetch_add(1, std::memory_order_relaxed);
    if ((tick & mask_) != 0) return false;
    if (deadline_->expired()) {
      expired_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// The latched verdict without counting work; may lag the wall clock by
  /// up to one stride (same contract as rt::DeadlinePoller::expired()).
  bool expired() const { return expired_.load(std::memory_order_relaxed); }

  const rt::Deadline& deadline() const { return *deadline_; }

 private:
  const rt::Deadline* deadline_;
  uint32_t mask_;
  std::atomic<uint32_t> calls_{0};
  std::atomic<bool> expired_{false};
};

}  // namespace idxsel::exec

#endif  // IDXSEL_EXEC_SHARED_DEADLINE_H_
