// idxsel::exec — the work-stealing thread pool behind every parallel stage
// of the selection pipeline.
//
// The paper's scalability claim (H6's near-linear what-if volume vs
// CoPhy's exploding ILP) is about *work*; this layer is about turning that
// work into wall-clock speedup on multi-core hardware: H6 rounds evaluate
// hundreds of independent moves, the branch-and-bound explores independent
// subtrees, and the advisor can race whole strategies against each other
// (portfolio mode) — all of it dispatched here. See doc/parallelism.md.
//
// Design:
//  * one deque per worker; owners pop LIFO (cache-warm), thieves steal
//    FIFO from a victim chosen round-robin ("idxsel.exec.steals" counts
//    successful steals);
//  * ParallelFor distributes loop iterations through a shared atomic
//    cursor: the *caller participates* — it claims chunks like any worker
//    — so nested ParallelFor calls and ParallelFor from inside a pool task
//    (portfolio mode running a parallel selector) can never deadlock: even
//    with every worker busy, the caller alone drains the loop;
//  * cooperative with idxsel::rt — parallel loops poll rt::Deadline via
//    exec::SharedDeadlinePoller (shared_deadline.h) and stop issuing new
//    work on expiry, so bounded runs still return best-so-far incumbents.
//
// Determinism contract: the pool itself promises nothing about execution
// order. Deterministic results are the *callers'* responsibility and they
// achieve it by separating parallel evaluation from sequential reduction
// (see RecursiveSelector) or by timing-independent pruning margins (see
// mip::Solve). doc/parallelism.md spells out both patterns.

#ifndef IDXSEL_EXEC_THREAD_POOL_H_
#define IDXSEL_EXEC_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace idxsel::exec {

/// Number of threads the pipeline should use when the caller asked for
/// "auto" (threads == 0): the IDXSEL_THREADS environment variable when set
/// to a positive integer, otherwise std::thread::hardware_concurrency(),
/// clamped to [1, kMaxThreads].
size_t DefaultThreads();

/// Upper clamp for DefaultThreads() and for explicit thread counts; keeps
/// a misconfigured IDXSEL_THREADS from spawning thousands of threads.
inline constexpr size_t kMaxThreads = 64;

/// Resolves a user-facing thread-count option: 0 = DefaultThreads(),
/// anything else clamped to [1, kMaxThreads].
size_t ResolveThreads(size_t requested);

/// Work-stealing thread pool. `threads` is the total parallelism a
/// ParallelFor achieves: the pool spawns `threads - 1` workers and the
/// calling thread contributes the remaining lane. A pool of size 1 spawns
/// no threads at all — Submit and ParallelFor then execute inline, which
/// is the serial mode every strategy defaults to.
class ThreadPool {
 public:
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + caller lane).
  size_t size() const { return threads_; }

  /// The process-wide pool used when callers pass threads != 1 without
  /// their own pool; sized by DefaultThreads() at first use.
  static ThreadPool& Default();

  /// Schedules `fn` on a worker deque and returns its future. On a pool of
  /// size 1 the task runs inline before Submit returns (the future is
  /// ready). Tasks must not throw.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Push([task]() { (*task)(); });
    return future;
  }

  /// Runs body(i) for every i in [0, n), distributing iterations in
  /// contiguous chunks over the workers *and the calling thread*; returns
  /// when all n iterations completed. `grain` is the chunk size (0 picks
  /// one that yields ~4 chunks per lane). Safe to call from inside a pool
  /// task (the caller lane alone guarantees progress). `body` must not
  /// throw and must tolerate concurrent invocation for distinct i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                   size_t grain = 0);

 private:
  struct WorkerQueue {
    common::Mutex mu;
    std::deque<std::function<void()>> tasks IDXSEL_GUARDED_BY(mu);
  };

  /// Enqueues a task (round-robin victim); wakes a sleeper. Inline
  /// execution when the pool has no workers.
  void Push(std::function<void()> task);

  void WorkerLoop(size_t self);

  /// Pops from own deque (back) or steals from another (front).
  bool TryRun(size_t self);

  size_t threads_;                 // total lanes (workers_.size() + 1)
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
  /// Guards nothing by itself — it exists to close the lost-wakeup window
  /// between a sleeper's predicate check and its wait (see Push and
  /// ~ThreadPool); the predicate state (stop_, pending_) stays atomic.
  // idxsel-lint: allow(guarded-field) reason=wakeup-ordering mutex; the
  // predicate state is atomic by design, see the comment above
  common::Mutex sleep_mu_;
  common::CondVar sleep_cv_;
  std::atomic<uint64_t> pending_{0};
};

}  // namespace idxsel::exec

#endif  // IDXSEL_EXEC_THREAD_POOL_H_
