#include "engine/btree_index.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace idxsel::engine {

BTreeIndex::BTreeIndex(const ColumnTable* table,
                       std::vector<uint32_t> columns)
    : columns_(std::move(columns)), width_(columns_.size()) {
  IDXSEL_CHECK(table != nullptr);
  IDXSEL_CHECK(!columns_.empty());
  for (uint32_t c : columns_) IDXSEL_CHECK_LT(c, table->num_columns());

  // Sort row ids by composite key, then materialize the flattened keys.
  const size_t n = table->num_rows();
  rows_.resize(n);
  std::iota(rows_.begin(), rows_.end(), 0u);
  std::sort(rows_.begin(), rows_.end(), [&](uint32_t x, uint32_t y) {
    for (uint32_t c : columns_) {
      const uint32_t vx = table->at(c, x);
      const uint32_t vy = table->at(c, y);
      if (vx != vy) return vx < vy;
    }
    return x < y;
  });
  keys_.resize(n * width_);
  for (size_t e = 0; e < n; ++e) {
    for (size_t u = 0; u < width_; ++u) {
      keys_[e * width_ + u] = table->at(columns_[u], rows_[e]);
    }
  }

  // Leaf boundaries, then inner levels until one root node remains.
  std::vector<size_t> level;
  for (size_t offset = 0; offset < n; offset += kLeafCapacity) {
    level.push_back(offset);
  }
  if (level.empty()) level.push_back(0);
  levels_.push_back(level);
  while (levels_.back().size() > kInnerFanout) {
    const std::vector<size_t>& below = levels_.back();
    std::vector<size_t> above;
    for (size_t i = 0; i < below.size(); i += kInnerFanout) {
      above.push_back(below[i]);
    }
    levels_.push_back(std::move(above));
  }
}

int BTreeIndex::ComparePrefix(size_t pos,
                              std::span<const uint32_t> values) const {
  const uint32_t* key = keys_.data() + pos * width_;
  for (size_t u = 0; u < values.size(); ++u) {
    if (key[u] < values[u]) return -1;
    if (key[u] > values[u]) return 1;
  }
  return 0;
}

size_t BTreeIndex::LowerBound(std::span<const uint32_t> values) const {
  const size_t n = rows_.size();
  if (n == 0) return 0;

  // Descend: at each level, locate the node whose subtree must contain the
  // first entry with key-prefix >= values, then narrow to its children.
  size_t lo = 0;
  size_t hi = levels_.back().size();
  for (size_t level = levels_.size(); level-- > 0;) {
    const std::vector<size_t>& boundaries = levels_[level];
    // First node in [lo, hi) whose first key is >= values.
    size_t a = lo;
    size_t b = hi;
    while (a < b) {
      const size_t mid = a + (b - a) / 2;
      if (ComparePrefix(boundaries[mid], values) < 0) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    const size_t node = a > lo ? a - 1 : lo;
    if (level > 0) {
      // Children of `node` at the level below, plus one boundary slack so
      // the exact boundary entry stays reachable.
      lo = node * kInnerFanout;
      hi = std::min(levels_[level - 1].size(),
                    (node + 1) * kInnerFanout + 1);
    } else {
      // Scan range inside the chosen leaf (plus one entry of slack).
      const size_t begin = boundaries[node];
      const size_t end = std::min(n, begin + kLeafCapacity + 1);
      size_t x = begin;
      size_t y = end;
      while (x < y) {
        const size_t mid = x + (y - x) / 2;
        if (ComparePrefix(mid, values) < 0) {
          x = mid + 1;
        } else {
          y = mid;
        }
      }
      return x;
    }
  }
  return 0;  // unreachable: levels_ is never empty
}

void BTreeIndex::LookupPrefix(std::span<const uint32_t> values,
                              std::vector<uint32_t>* out_rows) const {
  IDXSEL_CHECK_GE(values.size(), 1u);
  IDXSEL_CHECK_LE(values.size(), width_);
  for (size_t e = LowerBound(values); e < rows_.size(); ++e) {
    if (ComparePrefix(e, values) != 0) break;
    out_rows->push_back(rows_[e]);
  }
}

size_t BTreeIndex::memory_bytes() const {
  size_t total = keys_.size() * sizeof(uint32_t) +
                 rows_.size() * sizeof(uint32_t);
  for (const std::vector<size_t>& level : levels_) {
    total += level.size() * sizeof(size_t);
  }
  return total;
}

}  // namespace idxsel::engine
