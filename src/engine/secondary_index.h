// Physical secondary-index interface.
//
// The executor only needs key-prefix equality lookups; the physical
// representation is pluggable: a sorted row-id permutation
// (CompositeIndex, the classic column-store position index) or a
// bulk-loaded B+-tree (BTreeIndex). bench_engine_micro compares the two.

#ifndef IDXSEL_ENGINE_SECONDARY_INDEX_H_
#define IDXSEL_ENGINE_SECONDARY_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

namespace idxsel::engine {

/// Abstract multi-attribute secondary index over one table.
class SecondaryIndex {
 public:
  virtual ~SecondaryIndex() = default;

  /// Key columns (table ordinals), in index order.
  virtual const std::vector<uint32_t>& columns() const = 0;

  /// Appends to `out_rows` the ids of all rows whose key matches `values`
  /// on the first values.size() key columns (an equality prefix probe).
  virtual void LookupPrefix(std::span<const uint32_t> values,
                            std::vector<uint32_t>* out_rows) const = 0;

  /// Bytes consumed by the structure.
  virtual size_t memory_bytes() const = 0;
};

}  // namespace idxsel::engine

#endif  // IDXSEL_ENGINE_SECONDARY_INDEX_H_
