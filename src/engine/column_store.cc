#include "engine/column_store.h"

#include <algorithm>

#include "common/check.h"

namespace idxsel::engine {

ColumnTable::ColumnTable(uint64_t rows, const std::vector<uint32_t>& distinct,
                         Rng& rng)
    : rows_(rows) {
  IDXSEL_CHECK_GT(rows, 0u);
  columns_.reserve(distinct.size());
  for (uint32_t d : distinct) {
    IDXSEL_CHECK_GE(d, 1u);
    std::vector<uint32_t> column(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      column[r] = static_cast<uint32_t>(rng.UniformInt(0, d - 1));
    }
    columns_.push_back(std::move(column));
  }
}

size_t ColumnTable::memory_bytes() const {
  return columns_.size() * rows_ * sizeof(uint32_t);
}

Database::Database(const workload::Workload* workload_in,
                   uint64_t max_rows_per_table, uint64_t seed)
    : workload_(workload_in) {
  IDXSEL_CHECK(workload_ != nullptr);
  IDXSEL_CHECK_GT(max_rows_per_table, 0u);
  Rng root(seed);
  tables_.reserve(workload_->num_tables());
  for (TableId t = 0; t < workload_->num_tables(); ++t) {
    Rng rng = root.Fork();
    const workload::TableSchema& schema = workload_->table(t);
    const uint64_t rows = std::min(schema.row_count, max_rows_per_table);
    std::vector<uint32_t> distinct;
    distinct.reserve(schema.attributes.size());
    for (AttributeId a : schema.attributes) {
      const uint64_t d =
          std::min<uint64_t>(workload_->attribute(a).distinct_values, rows);
      distinct.push_back(static_cast<uint32_t>(d));
    }
    tables_.emplace_back(rows, distinct, rng);
  }
}

}  // namespace idxsel::engine
