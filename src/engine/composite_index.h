// Composite (multi-attribute) secondary index over a ColumnTable.
//
// Implemented as a row-id permutation sorted lexicographically by the index
// columns — the classic position-list secondary index of main-memory column
// stores. Probing an equality predicate on a key prefix is a binary search
// (std::equal_range) returning a contiguous run of row ids.

#ifndef IDXSEL_ENGINE_COMPOSITE_INDEX_H_
#define IDXSEL_ENGINE_COMPOSITE_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "engine/column_store.h"
#include "engine/secondary_index.h"

namespace idxsel::engine {

/// Secondary index on an ordered list of column ordinals of one table.
class CompositeIndex : public SecondaryIndex {
 public:
  /// Builds the index by sorting the table's row ids.
  CompositeIndex(const ColumnTable* table, std::vector<uint32_t> columns);

  const std::vector<uint32_t>& columns() const override { return columns_; }
  size_t key_width() const { return columns_.size(); }

  /// SecondaryIndex probe: appends the matching row ids.
  void LookupPrefix(std::span<const uint32_t> values,
                    std::vector<uint32_t>* out_rows) const override;

  /// Row ids matching equality on the first `values.size()` key columns
  /// (a key *prefix*); the returned span aliases the index and is sorted by
  /// the remaining key columns.
  std::span<const uint32_t> Probe(std::span<const uint32_t> values) const;

  /// Bytes consumed: the row-id permutation plus one materialized key copy
  /// per column (mirroring p_k of the analytic model).
  size_t memory_bytes() const override;

 private:
  const ColumnTable* table_;
  std::vector<uint32_t> columns_;
  std::vector<uint32_t> sorted_rows_;
};

}  // namespace idxsel::engine

#endif  // IDXSEL_ENGINE_COMPOSITE_INDEX_H_
