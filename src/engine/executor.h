// Conjunctive-equality query executor over the column store.
//
// Evaluates a query (a set of column = literal predicates on one table)
// either by pure sequential column scans or by probing one composite index
// for its coverable key prefix and filtering the remainder by position —
// the same one-index-per-query access-path model the paper's evaluations
// use (Example 1(i)).

#ifndef IDXSEL_ENGINE_EXECUTOR_H_
#define IDXSEL_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "engine/column_store.h"
#include "engine/secondary_index.h"

namespace idxsel::engine {

/// One equality predicate: table column ordinal = value.
struct Predicate {
  uint32_t column = 0;
  uint32_t value = 0;
};

/// Execution outcome; `rows_touched` approximates the memory traffic and
/// guards against the compiler optimizing the scan away.
struct ExecutionResult {
  uint64_t matches = 0;
  uint64_t rows_touched = 0;
};

/// Stateless executor over one table. `distinct_counts` (per column
/// ordinal) drive predicate ordering — most selective first.
class Executor {
 public:
  Executor(const ColumnTable* table, std::vector<uint32_t> distinct_counts)
      : table_(table), distinct_(std::move(distinct_counts)) {}

  /// Full sequential-scan plan: applies predicates most-selective-first
  /// (by ascending estimated selectivity given `distinct` counts).
  ExecutionResult ScanOnly(const std::vector<Predicate>& predicates) const;

  /// Index plan: probes `index` with the longest prefix of its key columns
  /// that predicates constrain (>= 1 required), then filters the remaining
  /// predicates over the resulting position list.
  ExecutionResult WithIndex(const std::vector<Predicate>& predicates,
                            const SecondaryIndex& index) const;

  /// Length of the index-key prefix the predicates can drive (0 when the
  /// leading key column is unconstrained, i.e. the index is inapplicable).
  static size_t CoverablePrefix(const std::vector<Predicate>& predicates,
                                const SecondaryIndex& index);

 private:
  const ColumnTable* table_;
  std::vector<uint32_t> distinct_;
};

}  // namespace idxsel::engine

#endif  // IDXSEL_ENGINE_EXECUTOR_H_
