// Measured-runtime cost source (Section IV-B).
//
// Instead of what-if estimations, the paper's end-to-end evaluation
// *executes* every query under every candidate index and feeds the measured
// runtimes into all selection strategies. MeasuredCostSource reproduces
// that protocol against the bundled column store: every f_j(k) is the
// best-of-`repetitions` wall-clock runtime of query j executed through
// index k (built on demand and cached), and f_j(0) is the pure-scan
// runtime. Index sizes are the actually-allocated bytes.
//
// Query templates are instantiated into concrete equality literals by
// sampling one row per query (deterministic seed), guaranteeing non-empty
// probe paths.

#ifndef IDXSEL_ENGINE_MEASURED_COST_H_
#define IDXSEL_ENGINE_MEASURED_COST_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "costmodel/what_if.h"
#include "engine/btree_index.h"
#include "engine/column_store.h"
#include "engine/composite_index.h"
#include "engine/executor.h"

namespace idxsel::engine {

/// Physical representation used for the on-demand index builds.
enum class IndexImplementation {
  kSortedPermutation,  ///< CompositeIndex (position-list index).
  kBTree,              ///< BTreeIndex (bulk-loaded B+-tree).
};

/// WhatIfBackend backed by real executions on a Database.
class MeasuredCostSource : public costmodel::WhatIfBackend {
 public:
  /// `repetitions`: executions per measurement; the minimum is reported
  /// (the paper repeats >= 100 times; scale to taste).
  MeasuredCostSource(const Database* database, uint32_t repetitions,
                     uint64_t seed,
                     IndexImplementation implementation =
                         IndexImplementation::kSortedPermutation);

  double BaseCost(QueryId j) const override;
  double CostWithIndex(QueryId j, const costmodel::Index& k) const override;
  double IndexMemory(const costmodel::Index& k) const override;

  /// Concrete predicates instantiated for query j (for tests/examples).
  const std::vector<Predicate>& predicates(QueryId j) const {
    return predicates_[j];
  }

  /// Number of physical index builds performed so far.
  size_t indexes_built() const { return indexes_.size(); }

 private:
  const SecondaryIndex& GetOrBuildIndex(const costmodel::Index& k) const;
  double TimeExecution(QueryId j, const SecondaryIndex* index) const;

  const Database* db_;
  uint32_t repetitions_;
  IndexImplementation implementation_;
  std::vector<std::vector<Predicate>> predicates_;  // per query
  std::vector<Executor> executors_;                 // per table
  mutable std::unordered_map<costmodel::Index, std::unique_ptr<SecondaryIndex>,
                             costmodel::IndexHash>
      indexes_;
  mutable std::vector<double> base_cache_;  // NaN = not yet measured
  mutable uint64_t sink_ = 0;  // defeats dead-code elimination
};

}  // namespace idxsel::engine

#endif  // IDXSEL_ENGINE_MEASURED_COST_H_
