// In-memory column store (the "commercial columnar main-memory DBMS"
// substitute for the paper's end-to-end evaluation, Section IV-B).
//
// Materializes a workload's tables as integer column vectors with the
// workload's per-attribute distinct counts, at an optional row-count scale
// factor (the paper's machine had 512 GB; `max_rows_per_table` keeps the
// experiment laptop-sized while preserving selectivities where possible).

#ifndef IDXSEL_ENGINE_COLUMN_STORE_H_
#define IDXSEL_ENGINE_COLUMN_STORE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "workload/workload.h"

namespace idxsel::engine {

using workload::AttributeId;
using workload::QueryId;
using workload::TableId;

/// One materialized table: column-major value vectors.
class ColumnTable {
 public:
  /// Generates `rows` rows; column c gets uniform values in
  /// [0, distinct[c]).
  ColumnTable(uint64_t rows, const std::vector<uint32_t>& distinct, Rng& rng);

  uint64_t num_rows() const { return rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Full column c (ordinal within the table).
  const std::vector<uint32_t>& column(size_t c) const { return columns_[c]; }

  /// Value of column c at row r.
  uint32_t at(size_t c, uint32_t r) const { return columns_[c][r]; }

  /// Bytes of value storage.
  size_t memory_bytes() const;

 private:
  uint64_t rows_;
  std::vector<std::vector<uint32_t>> columns_;
};

/// All tables of a workload, materialized.
class Database {
 public:
  /// `max_rows_per_table` caps (scales down) each table's cardinality;
  /// distinct counts are clamped to the scaled row count.
  Database(const workload::Workload* workload, uint64_t max_rows_per_table,
           uint64_t seed);

  const workload::Workload& workload() const { return *workload_; }
  const ColumnTable& table(TableId t) const { return tables_[t]; }

  /// Scaled row count of table t.
  uint64_t rows(TableId t) const { return tables_[t].num_rows(); }

  /// Column ordinal of attribute i within its table.
  uint32_t ordinal(AttributeId i) const {
    return workload_->attribute(i).ordinal;
  }

 private:
  const workload::Workload* workload_;
  std::vector<ColumnTable> tables_;
};

}  // namespace idxsel::engine

#endif  // IDXSEL_ENGINE_COLUMN_STORE_H_
