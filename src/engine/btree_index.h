// Bulk-loaded B+-tree secondary index over composite integer keys.
//
// A static (read-optimized) B+-tree: leaves hold sorted (key, row-id)
// entries and are chained for range scans; inner nodes hold separator keys
// and child offsets. Keys are materialized (unlike CompositeIndex, which
// indirects into the columns on every comparison), trading memory for
// cache-friendly probes — the classic pointer-free layout of main-memory
// trees.

#ifndef IDXSEL_ENGINE_BTREE_INDEX_H_
#define IDXSEL_ENGINE_BTREE_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "engine/column_store.h"
#include "engine/secondary_index.h"

namespace idxsel::engine {

/// Static composite-key B+-tree (see file comment).
class BTreeIndex : public SecondaryIndex {
 public:
  /// Bulk-loads from the table; `columns` are table ordinals in key order.
  BTreeIndex(const ColumnTable* table, std::vector<uint32_t> columns);

  const std::vector<uint32_t>& columns() const override { return columns_; }
  void LookupPrefix(std::span<const uint32_t> values,
                    std::vector<uint32_t>* out_rows) const override;
  size_t memory_bytes() const override;

  /// Tree height (levels above the leaves); exposed for tests.
  size_t height() const { return levels_.size(); }
  /// Total number of indexed entries.
  size_t size() const { return rows_.size(); }

 private:
  static constexpr size_t kLeafCapacity = 64;
  static constexpr size_t kInnerFanout = 32;

  /// Compares entry `pos`'s first `m` key values against `values`:
  /// negative / 0 / positive like memcmp.
  int ComparePrefix(size_t pos, std::span<const uint32_t> values) const;

  /// Index of the first entry whose prefix >= values (lower bound by
  /// tree descent).
  size_t LowerBound(std::span<const uint32_t> values) const;

  std::vector<uint32_t> columns_;
  size_t width_ = 0;
  /// Flattened sorted keys: entry e occupies keys_[e*width_ .. +width_).
  std::vector<uint32_t> keys_;
  std::vector<uint32_t> rows_;  ///< Row id per entry.
  /// levels_[0] = separator entry-offsets of the level directly above the
  /// leaves, levels_.back() = root level. Each level stores the *first
  /// entry offset* of every node of the level below, enabling binary
  /// descent without pointers.
  std::vector<std::vector<size_t>> levels_;
};

}  // namespace idxsel::engine

#endif  // IDXSEL_ENGINE_BTREE_INDEX_H_
