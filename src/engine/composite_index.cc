#include "engine/composite_index.h"

#include <algorithm>

#include "common/check.h"

namespace idxsel::engine {

CompositeIndex::CompositeIndex(const ColumnTable* table,
                               std::vector<uint32_t> columns)
    : table_(table), columns_(std::move(columns)) {
  IDXSEL_CHECK(table_ != nullptr);
  IDXSEL_CHECK(!columns_.empty());
  for (uint32_t c : columns_) IDXSEL_CHECK_LT(c, table_->num_columns());

  sorted_rows_.resize(table_->num_rows());
  for (uint32_t r = 0; r < sorted_rows_.size(); ++r) sorted_rows_[r] = r;
  std::sort(sorted_rows_.begin(), sorted_rows_.end(),
            [&](uint32_t x, uint32_t y) {
              for (uint32_t c : columns_) {
                const uint32_t vx = table_->at(c, x);
                const uint32_t vy = table_->at(c, y);
                if (vx != vy) return vx < vy;
              }
              return x < y;  // stable row order within equal keys
            });
}

std::span<const uint32_t> CompositeIndex::Probe(
    std::span<const uint32_t> values) const {
  IDXSEL_CHECK_GE(values.size(), 1u);
  IDXSEL_CHECK_LE(values.size(), columns_.size());
  // Lexicographic comparison of a row's key prefix against `values`:
  // -1 below, 0 equal, +1 above.
  auto compare = [&](uint32_t row) {
    for (size_t u = 0; u < values.size(); ++u) {
      const uint32_t v = table_->at(columns_[u], row);
      if (v < values[u]) return -1;
      if (v > values[u]) return 1;
    }
    return 0;
  };
  const auto lower = std::partition_point(
      sorted_rows_.begin(), sorted_rows_.end(),
      [&](uint32_t row) { return compare(row) < 0; });
  const auto upper = std::partition_point(
      lower, sorted_rows_.end(),
      [&](uint32_t row) { return compare(row) <= 0; });
  return {sorted_rows_.data() + (lower - sorted_rows_.begin()),
          static_cast<size_t>(upper - lower)};
}

void CompositeIndex::LookupPrefix(std::span<const uint32_t> values,
                                  std::vector<uint32_t>* out_rows) const {
  const std::span<const uint32_t> range = Probe(values);
  out_rows->insert(out_rows->end(), range.begin(), range.end());
}

size_t CompositeIndex::memory_bytes() const {
  return sorted_rows_.size() * sizeof(uint32_t) * (1 + columns_.size());
}

}  // namespace idxsel::engine
