#include "engine/measured_cost.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/stopwatch.h"

namespace idxsel::engine {

MeasuredCostSource::MeasuredCostSource(const Database* database,
                                       uint32_t repetitions, uint64_t seed,
                                       IndexImplementation implementation)
    : db_(database),
      repetitions_(repetitions),
      implementation_(implementation) {
  IDXSEL_CHECK(db_ != nullptr);
  IDXSEL_CHECK_GE(repetitions, 1u);
  const workload::Workload& w = db_->workload();

  executors_.reserve(w.num_tables());
  for (TableId t = 0; t < w.num_tables(); ++t) {
    std::vector<uint32_t> distinct;
    distinct.reserve(w.table(t).attributes.size());
    for (AttributeId a : w.table(t).attributes) {
      distinct.push_back(static_cast<uint32_t>(
          std::min<uint64_t>(w.attribute(a).distinct_values,
                             db_->rows(t))));
    }
    executors_.emplace_back(&db_->table(t), std::move(distinct));
  }

  base_cache_.assign(w.num_queries(),
                     std::numeric_limits<double>::quiet_NaN());

  // Instantiate each template with the literal values of one sampled row,
  // so every predicate chain has at least one match.
  Rng rng(seed);
  predicates_.resize(w.num_queries());
  for (QueryId j = 0; j < w.num_queries(); ++j) {
    const workload::Query& q = w.query(j);
    const ColumnTable& table = db_->table(q.table);
    const uint32_t row = static_cast<uint32_t>(
        rng.UniformInt(0, static_cast<int64_t>(table.num_rows()) - 1));
    for (AttributeId a : q.attributes) {
      const uint32_t col = db_->ordinal(a);
      predicates_[j].push_back(Predicate{col, table.at(col, row)});
    }
  }
}

const SecondaryIndex& MeasuredCostSource::GetOrBuildIndex(
    const costmodel::Index& k) const {
  auto it = indexes_.find(k);
  if (it == indexes_.end()) {
    const workload::Workload& w = db_->workload();
    const TableId t = w.attribute(k.leading()).table;
    std::vector<uint32_t> columns;
    columns.reserve(k.width());
    for (AttributeId a : k.attributes()) {
      IDXSEL_CHECK_EQ(w.attribute(a).table, t);
      columns.push_back(db_->ordinal(a));
    }
    std::unique_ptr<SecondaryIndex> index;
    if (implementation_ == IndexImplementation::kBTree) {
      index = std::make_unique<BTreeIndex>(&db_->table(t),
                                           std::move(columns));
    } else {
      index = std::make_unique<CompositeIndex>(&db_->table(t),
                                               std::move(columns));
    }
    it = indexes_.emplace(k, std::move(index)).first;
  }
  return *it->second;
}

double MeasuredCostSource::TimeExecution(QueryId j,
                                         const SecondaryIndex* index) const {
  const workload::Query& q = db_->workload().query(j);
  const Executor& executor = executors_[q.table];
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t rep = 0; rep < repetitions_; ++rep) {
    Stopwatch watch;
    const ExecutionResult result =
        index == nullptr ? executor.ScanOnly(predicates_[j])
                         : executor.WithIndex(predicates_[j], *index);
    best = std::min(best, watch.ElapsedSeconds());
    sink_ += result.matches + result.rows_touched;
  }
  return best;
}

double MeasuredCostSource::BaseCost(QueryId j) const {
  // Scan times are re-used across every CostWithIndex call for this query;
  // measuring them once keeps the evaluation protocol O(one execution per
  // (query, index) pair), like the paper's setup.
  if (std::isnan(base_cache_[j])) {
    base_cache_[j] = TimeExecution(j, nullptr);
  }
  return base_cache_[j];
}

double MeasuredCostSource::CostWithIndex(QueryId j,
                                         const costmodel::Index& k) const {
  const SecondaryIndex& index = GetOrBuildIndex(k);
  // Inapplicable indexes (unconstrained leading key column) fall back to
  // the scan plan, like a real optimizer would.
  if (Executor::CoverablePrefix(predicates_[j], index) == 0) {
    return BaseCost(j);
  }
  const double with_index = TimeExecution(j, &index);
  // The optimizer picks the better of probe and scan.
  return std::min(with_index, BaseCost(j));
}

double MeasuredCostSource::IndexMemory(const costmodel::Index& k) const {
  return static_cast<double>(GetOrBuildIndex(k).memory_bytes());
}

}  // namespace idxsel::engine
