#include "engine/executor.h"

#include <algorithm>

#include "common/check.h"

namespace idxsel::engine {
namespace {

/// Filters `positions` by the remaining predicates, touching every surviving
/// position once per predicate (vector-at-a-time).
ExecutionResult FilterPositions(const ColumnTable& table,
                                std::vector<uint32_t> positions,
                                const std::vector<Predicate>& predicates,
                                uint64_t touched_so_far) {
  ExecutionResult result;
  result.rows_touched = touched_so_far;
  for (const Predicate& p : predicates) {
    const std::vector<uint32_t>& column = table.column(p.column);
    std::vector<uint32_t> next;
    next.reserve(positions.size());
    for (uint32_t r : positions) {
      ++result.rows_touched;
      if (column[r] == p.value) next.push_back(r);
    }
    positions = std::move(next);
    if (positions.empty()) break;
  }
  result.matches = positions.size();
  return result;
}

}  // namespace

ExecutionResult Executor::ScanOnly(
    const std::vector<Predicate>& predicates) const {
  IDXSEL_CHECK(!predicates.empty());
  // Most selective predicate first (highest distinct count), so the
  // intermediate position lists shrink as quickly as possible.
  std::vector<Predicate> order = predicates;
  std::sort(order.begin(), order.end(),
            [&](const Predicate& x, const Predicate& y) {
              const uint32_t dx = distinct_[x.column];
              const uint32_t dy = distinct_[y.column];
              if (dx != dy) return dx > dy;
              return x.column < y.column;
            });

  // First predicate scans the full column.
  ExecutionResult result;
  const Predicate& first = order.front();
  const std::vector<uint32_t>& column = table_->column(first.column);
  std::vector<uint32_t> positions;
  for (uint32_t r = 0; r < column.size(); ++r) {
    ++result.rows_touched;
    if (column[r] == first.value) positions.push_back(r);
  }
  const std::vector<Predicate> rest(order.begin() + 1, order.end());
  ExecutionResult filtered =
      FilterPositions(*table_, std::move(positions), rest,
                      result.rows_touched);
  return filtered;
}

size_t Executor::CoverablePrefix(const std::vector<Predicate>& predicates,
                                 const SecondaryIndex& index) {
  size_t len = 0;
  for (uint32_t key_col : index.columns()) {
    const bool constrained =
        std::any_of(predicates.begin(), predicates.end(),
                    [&](const Predicate& p) { return p.column == key_col; });
    if (!constrained) break;
    ++len;
  }
  return len;
}

ExecutionResult Executor::WithIndex(const std::vector<Predicate>& predicates,
                                    const SecondaryIndex& index) const {
  const size_t prefix_len = CoverablePrefix(predicates, index);
  IDXSEL_CHECK_GE(prefix_len, 1u);

  std::vector<uint32_t> key(prefix_len);
  for (size_t u = 0; u < prefix_len; ++u) {
    const uint32_t key_col = index.columns()[u];
    const auto it =
        std::find_if(predicates.begin(), predicates.end(),
                     [&](const Predicate& p) { return p.column == key_col; });
    key[u] = it->value;
  }
  std::vector<uint32_t> positions;
  index.LookupPrefix(key, &positions);
  std::sort(positions.begin(), positions.end());

  std::vector<Predicate> rest;
  for (const Predicate& p : predicates) {
    const bool covered =
        std::find(index.columns().begin(),
                  index.columns().begin() + static_cast<long>(prefix_len),
                  p.column) !=
        index.columns().begin() + static_cast<long>(prefix_len);
    if (!covered) rest.push_back(p);
  }
  const uint64_t probed = positions.size();
  return FilterPositions(*table_, std::move(positions), rest,
                         /*touched_so_far=*/probed);
}

}  // namespace idxsel::engine
