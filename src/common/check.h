// Invariant-checking macros.
//
// CHECK-style macros are used for programmer errors (broken invariants,
// out-of-contract calls). Recoverable conditions use Status/Result instead
// (see status.h). Following the RocksDB/Arrow convention, CHECK failures
// abort with a diagnostic; they are enabled in all build types because the
// checked conditions are never on data-plane hot paths.

#ifndef IDXSEL_COMMON_CHECK_H_
#define IDXSEL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace idxsel::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace idxsel::internal

#define IDXSEL_CHECK(expr)                                         \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::idxsel::internal::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                              \
  } while (0)

#define IDXSEL_CHECK_OP(a, op, b) IDXSEL_CHECK((a)op(b))
#define IDXSEL_CHECK_EQ(a, b) IDXSEL_CHECK_OP(a, ==, b)
#define IDXSEL_CHECK_NE(a, b) IDXSEL_CHECK_OP(a, !=, b)
#define IDXSEL_CHECK_LT(a, b) IDXSEL_CHECK_OP(a, <, b)
#define IDXSEL_CHECK_LE(a, b) IDXSEL_CHECK_OP(a, <=, b)
#define IDXSEL_CHECK_GT(a, b) IDXSEL_CHECK_OP(a, >, b)
#define IDXSEL_CHECK_GE(a, b) IDXSEL_CHECK_OP(a, >=, b)

// Debug-only checks: full IDXSEL_CHECK semantics under !NDEBUG; under
// NDEBUG the condition is never evaluated (no side effects, no cost) but
// stays compiled — `false && (expr)` keeps the expression type-checked so
// an NDEBUG build cannot silently rot a DCHECK into invalid code.
#ifdef NDEBUG
#define IDXSEL_DCHECK(expr)         \
  do {                              \
    if (false && (expr)) {          \
    }                               \
  } while (0)
#else
#define IDXSEL_DCHECK(expr) IDXSEL_CHECK(expr)
#endif

#define IDXSEL_DCHECK_OP(a, op, b) IDXSEL_DCHECK((a)op(b))
#define IDXSEL_DCHECK_EQ(a, b) IDXSEL_DCHECK_OP(a, ==, b)
#define IDXSEL_DCHECK_NE(a, b) IDXSEL_DCHECK_OP(a, !=, b)
#define IDXSEL_DCHECK_LT(a, b) IDXSEL_DCHECK_OP(a, <, b)
#define IDXSEL_DCHECK_LE(a, b) IDXSEL_DCHECK_OP(a, <=, b)
#define IDXSEL_DCHECK_GT(a, b) IDXSEL_DCHECK_OP(a, >, b)
#define IDXSEL_DCHECK_GE(a, b) IDXSEL_DCHECK_OP(a, >=, b)

#endif  // IDXSEL_COMMON_CHECK_H_
