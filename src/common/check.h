// Invariant-checking macros.
//
// CHECK-style macros are used for programmer errors (broken invariants,
// out-of-contract calls). Recoverable conditions use Status/Result instead
// (see status.h). Following the RocksDB/Arrow convention, CHECK failures
// abort with a diagnostic; they are enabled in all build types because the
// checked conditions are never on data-plane hot paths.

#ifndef IDXSEL_COMMON_CHECK_H_
#define IDXSEL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace idxsel::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace idxsel::internal

#define IDXSEL_CHECK(expr)                                         \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::idxsel::internal::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                              \
  } while (0)

#define IDXSEL_CHECK_OP(a, op, b) IDXSEL_CHECK((a)op(b))
#define IDXSEL_CHECK_EQ(a, b) IDXSEL_CHECK_OP(a, ==, b)
#define IDXSEL_CHECK_NE(a, b) IDXSEL_CHECK_OP(a, !=, b)
#define IDXSEL_CHECK_LT(a, b) IDXSEL_CHECK_OP(a, <, b)
#define IDXSEL_CHECK_LE(a, b) IDXSEL_CHECK_OP(a, <=, b)
#define IDXSEL_CHECK_GT(a, b) IDXSEL_CHECK_OP(a, >, b)
#define IDXSEL_CHECK_GE(a, b) IDXSEL_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define IDXSEL_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define IDXSEL_DCHECK(expr) IDXSEL_CHECK(expr)
#endif

#endif  // IDXSEL_COMMON_CHECK_H_
