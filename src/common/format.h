// Console table formatting used by the benchmark harnesses to print
// paper-style result tables and series.

#ifndef IDXSEL_COMMON_FORMAT_H_
#define IDXSEL_COMMON_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace idxsel {

/// Accumulates rows of strings and renders an aligned ASCII table.
///
/// Example:
///   TablePrinter t({"# Queries", "Runtime CoPhy", "Runtime (H6)"});
///   t.AddRow({"500", "0.35 s", "0.276 s"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a header separator and column alignment.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals, trimming zeros
/// ("1.25", "0.3", "12").
std::string FormatDouble(double v, int digits = 3);

/// Formats seconds compactly: "312 ms", "4.12 s", "2.3 min", or "DNF" when
/// `dnf` is set (mirrors Table I's did-not-finish marker).
std::string FormatSeconds(double seconds, bool dnf = false);

/// Formats byte counts: "512 B", "1.5 KiB", "3.2 MiB", "4.0 GiB".
std::string FormatBytes(double bytes);

/// Formats an integer with thousands separators: 97550 -> "97 550" (paper
/// style).
std::string FormatCount(int64_t v);

}  // namespace idxsel

#endif  // IDXSEL_COMMON_FORMAT_H_
