// Clang Thread Safety Analysis annotation macros — the compile-time half
// of the project's concurrency contracts.
//
// Every mutex-holding class in the tree states which lock guards which
// field (IDXSEL_GUARDED_BY), which lock a method needs on entry
// (IDXSEL_REQUIRES), and which locks a function takes and drops
// (IDXSEL_ACQUIRE / IDXSEL_RELEASE). Clang's -Wthread-safety then proves
// the discipline statically on the clang CI leg ("thread-safety" in
// ci.yml, built with -Werror); TSan keeps sampling it dynamically. On
// non-Clang compilers every macro expands to nothing, so GCC builds are
// unaffected.
//
// The annotations only bite on capability-annotated lock types. The
// standard library's std::mutex carries no capability attributes under
// libstdc++, so the tree locks through the annotated wrappers in
// common/mutex.h (common::Mutex / common::MutexLock / common::CondVar)
// instead of bare std::mutex — see doc/static_analysis.md ("Concurrency
// contracts") for the conventions, and the idxsel_lint `guarded-field`
// check for the enforcement that new mutable state keeps declaring its
// guard.

#ifndef IDXSEL_COMMON_THREAD_ANNOTATIONS_H_
#define IDXSEL_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define IDXSEL_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define IDXSEL_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability ("mutex"): lockable state the
/// analysis tracks. Applied to the class, e.g.
///   class IDXSEL_CAPABILITY("mutex") Mutex { ... };
#define IDXSEL_CAPABILITY(x) \
  IDXSEL_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor (common::MutexLock).
#define IDXSEL_SCOPED_CAPABILITY \
  IDXSEL_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Field may only be read or written while holding the named capability:
///   std::vector<Record> records_ IDXSEL_GUARDED_BY(mu_);
#define IDXSEL_GUARDED_BY(x) \
  IDXSEL_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer field whose *pointee* is guarded by the named capability (the
/// pointer itself may be read freely).
#define IDXSEL_PT_GUARDED_BY(x) \
  IDXSEL_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the named capabilities to be held on entry, and does
/// not release them.
#define IDXSEL_REQUIRES(...) \
  IDXSEL_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function acquires the named capabilities (or `this` when empty) and
/// holds them past return.
#define IDXSEL_ACQUIRE(...) \
  IDXSEL_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the named capabilities (or `this` when empty).
#define IDXSEL_RELEASE(...) \
  IDXSEL_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function attempts the named capabilities; the first argument is the
/// return value that means "acquired".
#define IDXSEL_TRY_ACQUIRE(...) \
  IDXSEL_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the named capabilities (deadlock prevention for
/// functions that acquire them internally).
#define IDXSEL_EXCLUDES(...) \
  IDXSEL_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability (accessors that
/// expose a lock).
#define IDXSEL_RETURN_CAPABILITY(x) \
  IDXSEL_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Declares that the function's assertion establishes the capability
/// (debug checks that abort when the lock is not held).
#define IDXSEL_ASSERT_CAPABILITY(x) \
  IDXSEL_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Escape hatch: the function's locking is deliberately invisible to the
/// analysis. Every use must explain why in a comment — the idxsel_lint
/// `guarded-field` reviewers treat an unexplained opt-out as a smell.
#define IDXSEL_NO_THREAD_SAFETY_ANALYSIS \
  IDXSEL_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // IDXSEL_COMMON_THREAD_ANNOTATIONS_H_
