#include "common/csv.h"

#include <fstream>

#include "common/check.h"

namespace idxsel {
namespace {

std::string EscapeField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string RenderRow(const std::vector<std::string>& row) {
  std::string line;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i != 0) line += ',';
    line += EscapeField(row[i]);
  }
  line += '\n';
  return line;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> row) {
  IDXSEL_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string CsvWriter::ToString() const {
  std::string out = RenderRow(header_);
  for (const auto& row : rows_) out += RenderRow(row);
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::Internal("cannot open " + path);
  file << ToString();
  if (!file.good()) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

}  // namespace idxsel
