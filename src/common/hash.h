// Hash mixing utilities shared by the caching layers.
//
// The what-if caches key on (query, index) and (query, configuration)
// tuples. Their original hashes chained components with `h * 1000003 + x`,
// which keeps most entropy in the high bits and leaves the low bits — the
// ones both unordered_map bucketing and exec::ShardedMap shard selection
// consume — clustered for sequential ids. SplitMix64 finalization spreads
// every input bit across the whole word, so shard selection and bucket
// masks see near-uniform keys (tested in whatif_test.cc's
// collision-distribution suite).

#ifndef IDXSEL_COMMON_HASH_H_
#define IDXSEL_COMMON_HASH_H_

#include <cstdint>

namespace idxsel {

/// SplitMix64 finalizer (Steele et al.): a cheap bijective mixer whose
/// output passes avalanche tests — flipping any input bit flips each
/// output bit with probability ~1/2.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent combination of a running hash with one more component;
/// both inputs are mixed so sequential ids cannot cancel.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return SplitMix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                            (seed >> 2)));
}

}  // namespace idxsel

#endif  // IDXSEL_COMMON_HASH_H_
