// idxsel::rt — cooperative deadlines and cancellation.
//
// The paper's scalability story is really a story about *time budgets*:
// CoPhy runs are reported as "DNF" when the solver hits its wall clock,
// and Algorithm 1 is valued because it degrades gracefully. rt::Deadline
// generalizes the MIP solver's private time limit into a budget every
// stage of the pipeline (candidate enumeration, H1-H6, CoPhy, the advisor
// facade) polls cooperatively: when it expires, each stage stops issuing
// new work and returns its best-so-far incumbent with Status::Timeout —
// every strategy becomes an anytime algorithm.
//
// Polling discipline: Deadline::expired() costs one steady_clock read (and
// nothing at all when the deadline is unbounded and has no cancellation
// token). Hot loops wrap it in a DeadlinePoller, which consults the clock
// only every `stride` calls — the same amortization the branch-and-bound
// already used for its time limit. See doc/robustness.md for the contract
// (which loops poll, at what granularity) and bench/bench_deadline.cc for
// the measured overhead.

#ifndef IDXSEL_COMMON_DEADLINE_H_
#define IDXSEL_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace idxsel::rt {

/// Thread-safe cancellation flag, shared by reference. A caller that wants
/// to abort a running selection (interactive advisor, shutting-down
/// service) sets it; every deadline poll observes it. One-way: once set it
/// stays set until Reset().
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Re-arms the token (tests and pooled advisors).
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A wall-clock budget plus an optional cancellation token; cheap to copy
/// and pass by value. Default-constructed deadlines are unbounded and cost
/// two pointer-sized compares per poll — no clock read.
class Deadline {
 public:
  /// Unbounded: never expires (unless a cancellation token fires).
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `seconds` from now. Non-positive budgets expire immediately;
  /// an infinite budget yields an unbounded deadline.
  static Deadline After(double seconds) {
    Deadline d;
    if (seconds == std::numeric_limits<double>::infinity()) return d;
    d.at_ = Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(seconds < 0.0 ? 0.0 : seconds));
    d.bounded_ = true;
    return d;
  }

  /// Attaches a cancellation token (not owned; must outlive the deadline's
  /// use). expired() then also reports true once the token is cancelled.
  void set_cancellation(const CancellationToken* token) { token_ = token; }
  const CancellationToken* cancellation() const { return token_; }

  /// True iff there is a wall-clock limit (cancellation aside).
  bool bounded() const { return bounded_; }

  /// True once the wall-clock budget is exhausted or the attached token is
  /// cancelled. One clock read when bounded; no clock read otherwise.
  bool expired() const {
    if (token_ != nullptr && token_->cancelled()) return true;
    return bounded_ && Clock::now() >= at_;
  }

  /// Seconds until expiry; +infinity when unbounded, 0 when expired.
  double remaining_seconds() const {
    if (token_ != nullptr && token_->cancelled()) return 0.0;
    if (!bounded_) return std::numeric_limits<double>::infinity();
    const double left =
        std::chrono::duration<double>(at_ - Clock::now()).count();
    return left > 0.0 ? left : 0.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point at_{};
  const CancellationToken* token_ = nullptr;
  bool bounded_ = false;
};

/// Amortized deadline polling for hot loops: consults the Deadline only
/// every `stride` calls and latches the result, so the steady-state cost
/// of a poll site is one increment, one mask, and one predictable branch.
class DeadlinePoller {
 public:
  /// `stride` must be a power of two. The referenced deadline must outlive
  /// the poller.
  explicit DeadlinePoller(const Deadline& deadline, uint32_t stride = 64)
      : deadline_(&deadline), mask_(stride - 1) {}

  /// Counts one unit of work; every `stride` calls checks the deadline.
  /// Once expired, stays expired (and stops consulting the clock).
  bool Expired() {
    if (expired_) return true;
    if ((++calls_ & mask_) != 0) return false;
    expired_ = deadline_->expired();
    return expired_;
  }

  /// The latched verdict, without counting work. Note: unlike Expired(),
  /// this never consults the clock, so it can lag by up to one stride.
  bool expired() const { return expired_; }

  const Deadline& deadline() const { return *deadline_; }

 private:
  const Deadline* deadline_;
  uint32_t mask_;
  uint32_t calls_ = 0;
  bool expired_ = false;
};

}  // namespace idxsel::rt

#endif  // IDXSEL_COMMON_DEADLINE_H_
