// Floating-point comparison helpers — the one approved home for raw ==/!=
// on doubles (tools/idxsel_lint's double-compare check flags every other
// site). Selection code compares costs for three distinct purposes, and
// the call spells out which one is meant:
//
//   ExactlyEqual / ExactlyZero  deliberate bitwise tests: comparator
//     tie-breaks that fall through to a deterministic tuple order, and
//     sparsity skips ("this coefficient is exactly 0.0, the row update is
//     a no-op"). These must NOT use a tolerance — a tolerance would merge
//     distinct cost values and make tie-breaking depend on encounter
//     order.
//   ApproxEqual  tolerance tests for derived quantities where rounding is
//     expected (cross-validating two evaluation paths, test assertions).
//
// NaN behaves as raw IEEE comparison does: ExactlyEqual(NaN, NaN) is
// false, matching the caller-visible semantics of the == it replaces.

#ifndef IDXSEL_COMMON_FLOAT_CMP_H_
#define IDXSEL_COMMON_FLOAT_CMP_H_

#include <cmath>

namespace idxsel {

/// Bitwise-intent equality (IEEE ==; -0.0 equals +0.0, NaN equals nothing).
inline bool ExactlyEqual(double a, double b) { return a == b; }

/// True iff `v` is positive or negative zero.
inline bool ExactlyZero(double v) { return v == 0.0; }

/// Relative-plus-absolute tolerance equality: |a-b| <= max(abs_tol,
/// rel_tol*max(|a|,|b|)). False if either side is NaN.
inline bool ApproxEqual(double a, double b, double rel_tol = 1e-9,
                        double abs_tol = 1e-12) {
  if (std::isnan(a) || std::isnan(b)) return false;
  if (a == b) return true;  // covers equal infinities
  // Distinct values with an infinity among them are never "approximately"
  // equal (the relative-scale term would otherwise swallow any gap).
  if (std::isinf(a) || std::isinf(b)) return false;
  const double diff = std::fabs(a - b);
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= std::fmax(abs_tol, rel_tol * scale);
}

}  // namespace idxsel

#endif  // IDXSEL_COMMON_FLOAT_CMP_H_
