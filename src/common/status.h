// Lightweight Status / Result<T> error handling.
//
// Recoverable errors (bad configuration, infeasible problems, timeouts) are
// reported through Status rather than exceptions, following the RocksDB
// idiom. Result<T> couples a Status with a value for functions that either
// produce a T or fail.

#ifndef IDXSEL_COMMON_STATUS_H_
#define IDXSEL_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace idxsel {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kInfeasible,      ///< optimization problem has no feasible point
  kTimeout,         ///< solver hit its wall-clock deadline ("DNF")
  kResourceLimit,   ///< node/iteration limit exhausted
  kInternal,
};

/// Returns a human-readable name for a status code ("Ok", "Timeout", ...).
const char* StatusCodeName(StatusCode code);

/// Success-or-error result of an operation, cheap to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ResourceLimit(std::string msg) {
    return Status(StatusCode::kResourceLimit, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit from value (mirrors absl::StatusOr ergonomics).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT
  /// Implicit from error status; must not be OK.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    IDXSEL_CHECK(!std::get<Status>(payload_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  /// Precondition: ok().
  const T& value() const& {
    IDXSEL_CHECK(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    IDXSEL_CHECK(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    IDXSEL_CHECK(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace idxsel

#endif  // IDXSEL_COMMON_STATUS_H_
