// Minimal CSV writer so every bench can dump machine-readable series next to
// the human-readable tables (for replotting the paper's figures).

#ifndef IDXSEL_COMMON_CSV_H_
#define IDXSEL_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace idxsel {

/// Buffers rows and writes an RFC-4180-ish CSV file.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a data row; arity must match the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the full CSV document (header + rows).
  std::string ToString() const;

  /// Writes the document to `path`. Fails with kInternal on I/O error.
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace idxsel

#endif  // IDXSEL_COMMON_CSV_H_
