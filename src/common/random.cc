#include "common/random.h"

#include <cmath>

namespace idxsel {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  IDXSEL_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::RoundUniform(double lo, double hi) {
  return static_cast<int64_t>(std::llround(Uniform(lo, hi)));
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  IDXSEL_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection-free modulo is fine here: span is tiny vs 2^64, bias < 2^-50.
  return lo + static_cast<int64_t>(Next() % span);
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace idxsel
