// Leaf-layer telemetry slots — the dependency-free half of observability.
//
// The layering DAG (DESIGN.md §2, enforced by tools/idxsel_lint) places
// `exec` and `kernel` beside `obs`, not above it: neither may include obs
// headers. Yet the thread pool wants its task/steal counters in run
// reports. This header squares that circle with a fixed table of plain
// relaxed atomics that any layer — including `common`'s own dependents at
// the very bottom of the DAG — may bump, and that `obs` (which *does*
// depend on common) publishes into every Registry snapshot under the
// metric names below. Increments are never lost to initialization order:
// the table is a function-local static of trivially-constructible atomics.
//
// Add a slot by extending the enum, the name table, and the kind table in
// lockstep; doc/observability.md lists the published names.
//
// The second half of this header is the *selection-journal bridge*: a
// structured decision record (JournalEvent) plus a process-wide sink
// pointer. Strategy layers build an event on the stack out of borrowed
// const char* / plain doubles — no allocation, no obs types — and hand it
// to EmitJournal(); obs installs a sink that copies the event into owned
// obs::JournalRecord storage. When no sink is installed (obs off, or the
// journal disabled at run time) JournalActive() is false and emitting
// layers skip even the label formatting. Same layering story as the
// slots: kernel/exec/selection may emit, only obs may consume.

#ifndef IDXSEL_COMMON_TELEMETRY_H_
#define IDXSEL_COMMON_TELEMETRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace idxsel::telemetry {

/// One process-wide metric owned by a layer that must not see obs.
enum class Slot : size_t {
  kExecTasks = 0,      ///< counter "idxsel.exec.tasks"
  kExecSteals,         ///< counter "idxsel.exec.steals"
  kExecParallelFors,   ///< counter "idxsel.exec.parallel_fors"
  kExecPoolThreads,    ///< gauge   "idxsel.exec.pool_threads"
  kKernelArenaInterns, ///< counter "idxsel.kernel.arena_interns"
  // idxsel::serve lifecycle counters (doc/serve.md). The serve layer sits
  // above obs in the DAG and could use obs directly, but routing through
  // the bridge keeps one publishing path for every layer's counters.
  kServeDeltasAccepted,   ///< counter "idxsel.serve.deltas_accepted"
  kServeDeltasCoalesced,  ///< counter "idxsel.serve.deltas_coalesced"
  kServeDeltasShed,       ///< counter "idxsel.serve.deltas_shed"
  kServeEpochs,           ///< counter "idxsel.serve.epochs"
  kServeRetries,          ///< counter "idxsel.serve.retries"
  kServeBreakerTrips,     ///< counter "idxsel.serve.breaker_trips"
  kServeBreakerCloses,    ///< counter "idxsel.serve.breaker_closes"
  kServeWatchdogCancels,  ///< counter "idxsel.serve.watchdog_cancels"
  kServeCheckpoints,      ///< counter "idxsel.serve.checkpoints"
  kServeRecoveries,       ///< counter "idxsel.serve.recoveries"
  kServeColdStarts,       ///< counter "idxsel.serve.cold_starts"
  kServeCacheFlushes,     ///< counter "idxsel.serve.cache_flushes"
  // idxsel::shard arbiter counters (doc/sharding.md). Shard-count-dependent
  // numbers (how many shards, how often the arbiter re-expanded a shard)
  // live HERE and in bench sidecars only — never in the selection journal,
  // which must stay byte-identical across shard and thread counts.
  kShardSelections,       ///< counter "idxsel.shard.selections"
  kShardShards,           ///< counter "idxsel.shard.shards"
  kShardArbiterRounds,    ///< counter "idxsel.shard.arbiter_rounds"
  kShardReruns,           ///< counter "idxsel.shard.reruns"
  kShardQueriesCompressed,///< counter "idxsel.shard.queries_compressed"
  kShardDirtyRebuilds,    ///< counter "idxsel.shard.dirty_rebuilds"
  kSlotCount,
};

inline constexpr size_t kSlotCount = static_cast<size_t>(Slot::kSlotCount);

/// Whether a slot publishes as a monotone counter or a level gauge.
enum class SlotKind : uint8_t { kCounter, kGauge };

/// Registry metric name a slot publishes under.
constexpr const char* SlotName(Slot slot) {
  switch (slot) {
    case Slot::kExecTasks:
      return "idxsel.exec.tasks";
    case Slot::kExecSteals:
      return "idxsel.exec.steals";
    case Slot::kExecParallelFors:
      return "idxsel.exec.parallel_fors";
    case Slot::kExecPoolThreads:
      return "idxsel.exec.pool_threads";
    case Slot::kKernelArenaInterns:
      return "idxsel.kernel.arena_interns";
    case Slot::kServeDeltasAccepted:
      return "idxsel.serve.deltas_accepted";
    case Slot::kServeDeltasCoalesced:
      return "idxsel.serve.deltas_coalesced";
    case Slot::kServeDeltasShed:
      return "idxsel.serve.deltas_shed";
    case Slot::kServeEpochs:
      return "idxsel.serve.epochs";
    case Slot::kServeRetries:
      return "idxsel.serve.retries";
    case Slot::kServeBreakerTrips:
      return "idxsel.serve.breaker_trips";
    case Slot::kServeBreakerCloses:
      return "idxsel.serve.breaker_closes";
    case Slot::kServeWatchdogCancels:
      return "idxsel.serve.watchdog_cancels";
    case Slot::kServeCheckpoints:
      return "idxsel.serve.checkpoints";
    case Slot::kServeRecoveries:
      return "idxsel.serve.recoveries";
    case Slot::kServeColdStarts:
      return "idxsel.serve.cold_starts";
    case Slot::kServeCacheFlushes:
      return "idxsel.serve.cache_flushes";
    case Slot::kShardSelections:
      return "idxsel.shard.selections";
    case Slot::kShardShards:
      return "idxsel.shard.shards";
    case Slot::kShardArbiterRounds:
      return "idxsel.shard.arbiter_rounds";
    case Slot::kShardReruns:
      return "idxsel.shard.reruns";
    case Slot::kShardQueriesCompressed:
      return "idxsel.shard.queries_compressed";
    case Slot::kShardDirtyRebuilds:
      return "idxsel.shard.dirty_rebuilds";
    case Slot::kSlotCount:
      break;
  }
  return "idxsel.telemetry.invalid";
}

constexpr SlotKind KindOf(Slot slot) {
  return slot == Slot::kExecPoolThreads ? SlotKind::kGauge
                                        : SlotKind::kCounter;
}

namespace internal {

inline std::atomic<int64_t>* Table() {
  static std::atomic<int64_t> table[kSlotCount] = {};
  return table;
}

}  // namespace internal

/// Counter bump; relaxed — slots are statistics, never synchronization.
inline void Add(Slot slot, int64_t delta = 1) {
  internal::Table()[static_cast<size_t>(slot)].fetch_add(
      delta, std::memory_order_relaxed);
}

/// Gauge store.
inline void Set(Slot slot, int64_t value) {
  internal::Table()[static_cast<size_t>(slot)].store(
      value, std::memory_order_relaxed);
}

inline int64_t Value(Slot slot) {
  return internal::Table()[static_cast<size_t>(slot)].load(
      std::memory_order_relaxed);
}

/// Rewinds every counter slot (gauges keep their level, mirroring
/// obs::Registry::ResetCountersAndHistograms, which calls this so bridged
/// counters reset in lockstep with registry ones).
inline void ResetAll() {
  for (size_t s = 0; s < kSlotCount; ++s) {
    if (KindOf(static_cast<Slot>(s)) == SlotKind::kCounter) {
      internal::Table()[s].store(0, std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------------------------------
// Selection-journal bridge.
// ---------------------------------------------------------------------------

/// One candidate move weighed during a decision. All pointers borrow from
/// the emitting frame; sinks must copy before returning.
struct JournalCandidate {
  const char* index = nullptr;   ///< canonical index label, e.g. "(3,7)"
  const char* reject = nullptr;  ///< nullptr for the winner; else a stable
                                 ///< reason: "budget-exceeded", "dominated",
                                 ///< "sanitized-whatif", "timeout",
                                 ///< "no-benefit"
  double benefit = 0.0;          ///< workload-cost reduction of the move
  double memory_delta = 0.0;     ///< bytes the move adds (may be +inf when
                                 ///< the what-if size was sanitized)
  double ratio = 0.0;            ///< benefit / memory_delta, the H6 key
};

/// One committed decision (or terminal event) of one strategy. Borrowed
/// storage, same rule as JournalCandidate.
struct JournalEvent {
  const char* strategy = nullptr;  ///< StrategyKey-style label: "h6", ...
  const char* action = nullptr;    ///< "commit", "prune", "swap", "pick",
                                   ///< "solve", "stop", "lane", "winner"
  uint64_t round = 0;              ///< 1-based decision ordinal in the run
  const char* winner = nullptr;    ///< label of the chosen index (nullptr
                                   ///< for terminal/no-pick events)
  double winner_ratio = 0.0;       ///< winner's benefit/memory ratio
  double margin = 0.0;             ///< winner_ratio minus best runner-up
                                   ///< ratio (0 when unopposed)
  double objective_before = 0.0;   ///< workload cost entering the round
  double objective_after = 0.0;    ///< workload cost after the commit
  double memory_after = 0.0;       ///< bytes used after the commit
  uint64_t sanitized_whatif = 0;   ///< what-if answers sanitized this round
  const JournalCandidate* candidates = nullptr;  ///< losers + winner
  size_t num_candidates = 0;
  const char* note = nullptr;      ///< optional free text (nullptr ok)
};

/// Sink contract: copy the event synchronously; may be called from any
/// thread (strategies emit only at serial points, but portfolio lanes run
/// concurrently with each other).
using JournalSink = void (*)(const JournalEvent& event);

namespace internal {

inline std::atomic<JournalSink>& JournalSinkSlot() {
  static std::atomic<JournalSink> sink{nullptr};
  return sink;
}

/// Per-thread suppression depth (see ScopedJournalSuppress).
inline int& JournalSuppressDepth() {
  thread_local int depth = 0;
  return depth;
}

}  // namespace internal

/// Installs (or, with nullptr, removes) the process-wide journal sink.
inline void SetJournalSink(JournalSink sink) {
  internal::JournalSinkSlot().store(sink, std::memory_order_release);
}

/// Cheap emit-side gate: true iff a sink is installed and the calling
/// thread is not inside a ScopedJournalSuppress. Emitters should check
/// this before doing any label formatting.
inline bool JournalActive() {
  return internal::JournalSuppressDepth() == 0 &&
         internal::JournalSinkSlot().load(std::memory_order_acquire) !=
             nullptr;
}

/// Hands one event to the installed sink (no-op when none, or while the
/// calling thread is suppressed).
inline void EmitJournal(const JournalEvent& event) {
  if (internal::JournalSuppressDepth() != 0) return;
  if (JournalSink sink =
          internal::JournalSinkSlot().load(std::memory_order_acquire)) {
    sink(event);
  }
}

/// Mutes JournalActive()/EmitJournal() on the *constructing thread* for
/// the scope's lifetime (re-entrant; depth-counted). The sharded selector
/// wraps each inner per-shard H6 run in one: shards run concurrently and
/// are re-expanded on demand, so their raw records would interleave
/// nondeterministically and duplicate replayed prefixes — the arbiter
/// instead emits its own canonical, shard-count-invariant records
/// (doc/sharding.md). Suppression is thread-local so concurrent journaled
/// strategies on other threads (portfolio lanes) are unaffected.
class ScopedJournalSuppress {
 public:
  ScopedJournalSuppress() { ++internal::JournalSuppressDepth(); }
  ~ScopedJournalSuppress() { --internal::JournalSuppressDepth(); }
  ScopedJournalSuppress(const ScopedJournalSuppress&) = delete;
  ScopedJournalSuppress& operator=(const ScopedJournalSuppress&) = delete;
};

}  // namespace idxsel::telemetry

#endif  // IDXSEL_COMMON_TELEMETRY_H_
