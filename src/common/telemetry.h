// Leaf-layer telemetry slots — the dependency-free half of observability.
//
// The layering DAG (DESIGN.md §2, enforced by tools/idxsel_lint) places
// `exec` and `kernel` beside `obs`, not above it: neither may include obs
// headers. Yet the thread pool wants its task/steal counters in run
// reports. This header squares that circle with a fixed table of plain
// relaxed atomics that any layer — including `common`'s own dependents at
// the very bottom of the DAG — may bump, and that `obs` (which *does*
// depend on common) publishes into every Registry snapshot under the
// metric names below. Increments are never lost to initialization order:
// the table is a function-local static of trivially-constructible atomics.
//
// Add a slot by extending the enum, the name table, and the kind table in
// lockstep; doc/observability.md lists the published names.

#ifndef IDXSEL_COMMON_TELEMETRY_H_
#define IDXSEL_COMMON_TELEMETRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace idxsel::telemetry {

/// One process-wide metric owned by a layer that must not see obs.
enum class Slot : size_t {
  kExecTasks = 0,      ///< counter "idxsel.exec.tasks"
  kExecSteals,         ///< counter "idxsel.exec.steals"
  kExecParallelFors,   ///< counter "idxsel.exec.parallel_fors"
  kExecPoolThreads,    ///< gauge   "idxsel.exec.pool_threads"
  kSlotCount,
};

inline constexpr size_t kSlotCount = static_cast<size_t>(Slot::kSlotCount);

/// Whether a slot publishes as a monotone counter or a level gauge.
enum class SlotKind : uint8_t { kCounter, kGauge };

/// Registry metric name a slot publishes under.
constexpr const char* SlotName(Slot slot) {
  switch (slot) {
    case Slot::kExecTasks:
      return "idxsel.exec.tasks";
    case Slot::kExecSteals:
      return "idxsel.exec.steals";
    case Slot::kExecParallelFors:
      return "idxsel.exec.parallel_fors";
    case Slot::kExecPoolThreads:
      return "idxsel.exec.pool_threads";
    case Slot::kSlotCount:
      break;
  }
  return "idxsel.telemetry.invalid";
}

constexpr SlotKind KindOf(Slot slot) {
  return slot == Slot::kExecPoolThreads ? SlotKind::kGauge
                                        : SlotKind::kCounter;
}

namespace internal {

inline std::atomic<int64_t>* Table() {
  static std::atomic<int64_t> table[kSlotCount] = {};
  return table;
}

}  // namespace internal

/// Counter bump; relaxed — slots are statistics, never synchronization.
inline void Add(Slot slot, int64_t delta = 1) {
  internal::Table()[static_cast<size_t>(slot)].fetch_add(
      delta, std::memory_order_relaxed);
}

/// Gauge store.
inline void Set(Slot slot, int64_t value) {
  internal::Table()[static_cast<size_t>(slot)].store(
      value, std::memory_order_relaxed);
}

inline int64_t Value(Slot slot) {
  return internal::Table()[static_cast<size_t>(slot)].load(
      std::memory_order_relaxed);
}

/// Rewinds every counter slot (gauges keep their level, mirroring
/// obs::Registry::ResetCountersAndHistograms, which calls this so bridged
/// counters reset in lockstep with registry ones).
inline void ResetAll() {
  for (size_t s = 0; s < kSlotCount; ++s) {
    if (KindOf(static_cast<Slot>(s)) == SlotKind::kCounter) {
      internal::Table()[s].store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace idxsel::telemetry

#endif  // IDXSEL_COMMON_TELEMETRY_H_
