// Annotated mutex primitives — the lock types the thread-safety analysis
// can see.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes,
// so Clang's -Wthread-safety cannot track them: a tree locking through
// them would either analyze nothing or warn on every guarded access. These
// zero-cost wrappers restate the standard types with the annotations from
// common/thread_annotations.h:
//
//   common::Mutex      std::mutex as an IDXSEL_CAPABILITY("mutex")
//   common::MutexLock  std::lock_guard as an IDXSEL_SCOPED_CAPABILITY
//   common::CondVar    std::condition_variable bound to a common::Mutex;
//                      every wait IDXSEL_REQUIRES the mutex
//
// Convention (enforced by review + the idxsel_lint `guarded-field` and
// `lock-order` checks): mutex-holding classes declare `common::Mutex mu_;`,
// guard their shared fields with IDXSEL_GUARDED_BY(mu_), and lock through
// `common::MutexLock lock(&mu_);`. Raw lock()/unlock() calls are for the
// rare split acquire/release shapes only. See doc/static_analysis.md
// ("Concurrency contracts").

#ifndef IDXSEL_COMMON_MUTEX_H_
#define IDXSEL_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace idxsel::common {

/// std::mutex with the capability attributes the analysis needs. Same
/// size, same semantics; never recursive.
class IDXSEL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IDXSEL_ACQUIRE() { mu_.lock(); }
  void unlock() IDXSEL_RELEASE() { mu_.unlock(); }
  bool try_lock() IDXSEL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a common::Mutex — std::lock_guard restated as a scoped
/// capability so the analysis knows the guarded region's extent.
class IDXSEL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) IDXSEL_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() IDXSEL_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to common::Mutex. Internally adopts the
/// already-held lock into a std::unique_lock for the wait and releases the
/// adoption before returning, so the caller's MutexLock stays the one true
/// owner — no condition_variable_any, no second mutex, no extra cost.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; `mu` must be held (it is released during the
  /// wait and reacquired before return, like std::condition_variable).
  void Wait(Mutex& mu) IDXSEL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's guard
  }

  /// Blocks until `pred()` is true (spurious-wakeup safe).
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) IDXSEL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  /// Blocks until `pred()` is true or `rel_time` elapsed; returns pred().
  /// Prefer WaitUntil loops when the predicate reads IDXSEL_GUARDED_BY
  /// fields: the analysis cannot see that `pred` runs under `mu`, so a
  /// guarded read inside the lambda would (correctly) be flagged.
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& rel_time,
               Predicate pred) IDXSEL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lock, rel_time, std::move(pred));
    lock.release();
    return satisfied;
  }

  /// Blocks until notified or `deadline` passed; returns false on timeout.
  /// The predicate-free shape for hand-written wait loops whose condition
  /// reads guarded fields (re-check the condition after every return).
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      IDXSEL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace idxsel::common

#endif  // IDXSEL_COMMON_MUTEX_H_
