// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the library (workload generation, data
// generation) draw from Rng so that every experiment is reproducible from a
// single seed, independent of the standard library implementation.
// The generator is xoshiro256** seeded via SplitMix64.

#ifndef IDXSEL_COMMON_RANDOM_H_
#define IDXSEL_COMMON_RANDOM_H_

#include <cstdint>

#include "common/check.h"

namespace idxsel {

/// Deterministic 64-bit PRNG (xoshiro256**), portable across platforms.
class Rng {
 public:
  /// Seeds the state from `seed` via SplitMix64 so that nearby seeds still
  /// yield uncorrelated streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Mirrors the paper's Uniform(a, b).
  double Uniform(double lo, double hi);

  /// round(Uniform(lo, hi)) as used throughout Appendix C; result is the
  /// nearest integer, so the endpoints carry half weight.
  int64_t RoundUniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Forks an independent sub-stream; used to give each table / column its
  /// own stream so generated artifacts do not shift when unrelated knobs
  /// change.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace idxsel

#endif  // IDXSEL_COMMON_RANDOM_H_
