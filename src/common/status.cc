#include "common/status.h"

namespace idxsel {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kResourceLimit:
      return "ResourceLimit";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace idxsel
