#include "common/format.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace idxsel {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  IDXSEL_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string sep = "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

std::string FormatSeconds(double seconds, bool dnf) {
  if (dnf) return "DNF";
  if (seconds < 1.0) return FormatDouble(seconds * 1e3, 1) + " ms";
  if (seconds < 120.0) return FormatDouble(seconds, 2) + " s";
  return FormatDouble(seconds / 60.0, 1) + " min";
}

std::string FormatBytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return FormatDouble(bytes, u == 0 ? 0 : 1) + " " + units[u];
}

std::string FormatCount(int64_t v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.insert(out.begin(), ' ');
    out.insert(out.begin(), *it);
    ++count;
  }
  return neg ? "-" + out : out;
}

}  // namespace idxsel
