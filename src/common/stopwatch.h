// Wall-clock stopwatch used by solvers (deadlines) and benches (timings).

#ifndef IDXSEL_COMMON_STOPWATCH_H_
#define IDXSEL_COMMON_STOPWATCH_H_

#include <chrono>

namespace idxsel {

/// Monotonic wall-clock stopwatch. Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace idxsel

#endif  // IDXSEL_COMMON_STOPWATCH_H_
