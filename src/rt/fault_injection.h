// Fault-injecting what-if backend — the chaos half of idxsel::rt.
//
// Production what-if optimizers misbehave: they return garbage estimates
// (NaN/Inf after arithmetic overflow, negative costs from broken
// statistics), stall under load, and fail transiently. A selection
// pipeline that feeds such values into benefit ratios or branch-and-bound
// bounds corrupts its output silently. FaultInjectingBackend decorates any
// costmodel::WhatIfBackend with deterministic, seeded injection of exactly
// these failure modes so tests and benches can prove the pipeline
// tolerates them (WhatIfEngine sanitizes; see doc/robustness.md).
//
// Injection is reproducible: the same seed and call sequence produce the
// same faults, independent of wall-clock time or platform (common/random.h
// xoshiro streams). Every injected fault is counted per kind and mirrored
// onto the process-wide "idxsel.rt.fault_injected" counter in IDXSEL_OBS
// builds.

#ifndef IDXSEL_RT_FAULT_INJECTION_H_
#define IDXSEL_RT_FAULT_INJECTION_H_

#include <cstdint>

#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "costmodel/what_if.h"

namespace idxsel::rt {

/// Knobs of the chaos backend. All probabilities are per backend call and
/// independent; value corruptions are mutually exclusive per call (first
/// matching draw wins).
struct FaultInjectionOptions {
  uint64_t seed = 1;  ///< Same seed + call order => same fault sequence.

  // Value corruption (applies to costs and index sizes).
  double nan_probability = 0.0;       ///< Return quiet NaN.
  double inf_probability = 0.0;       ///< Return +infinity.
  double negative_probability = 0.0;  ///< Negate the true value (or -1).

  // Spurious latency: with `latency_probability`, sleep `latency_seconds`
  // before answering — a stalled optimizer under load.
  double latency_probability = 0.0;
  double latency_seconds = 0.0;

  /// Transient outage: calls [fail_after_calls, fail_after_calls +
  /// fail_burst) return NaN regardless of the probabilistic draws, then
  /// the backend recovers. 0 burst = no outage.
  uint64_t fail_after_calls = 0;
  uint64_t fail_burst = 0;

  /// Recurring burst outages: after every healthy gap the backend fails
  /// for exactly `outage_burst` consecutive calls, then recovers — the
  /// N-failures-then-recovery shape a circuit breaker needs to trip,
  /// half-open on a probe, and close deterministically (doc/serve.md).
  /// Gap lengths are drawn uniformly from [outage_gap_min,
  /// outage_gap_max] on the seeded stream, so the whole schedule is a
  /// pure function of the seed and the call sequence. The first gap
  /// starts after `healthy_calls`. 0 burst = mode off; the one-shot
  /// fail_after_calls window above composes independently.
  uint64_t outage_burst = 0;
  uint64_t outage_gap_min = 0;
  uint64_t outage_gap_max = 0;

  /// The first `healthy_calls` calls are never corrupted (lets tests warm
  /// caches with truthful values before the chaos starts).
  uint64_t healthy_calls = 0;
};

/// Per-kind injection counters.
struct FaultInjectionStats {
  uint64_t calls = 0;
  uint64_t injected_nan = 0;
  uint64_t injected_inf = 0;
  uint64_t injected_negative = 0;
  uint64_t injected_latency = 0;
  uint64_t injected_outage = 0;

  uint64_t total_injected() const {
    return injected_nan + injected_inf + injected_negative +
           injected_latency + injected_outage;
  }
};

/// Decorator over any WhatIfBackend. Thread-safe: the PRNG position, call
/// counter, and stats are guarded by an internal mutex (injected latency
/// is slept outside the lock so a stalled call does not serialize the
/// other lanes). Under concurrent callers the fault *schedule* — which
/// draw lands on call #n — is still the seeded deterministic sequence,
/// but which engine lookup gets which call number depends on thread
/// interleaving; tests that need call-exact fault placement must drive
/// the backend from one thread.
class FaultInjectingBackend : public costmodel::WhatIfBackend {
 public:
  /// `inner` is not owned and must outlive the decorator.
  FaultInjectingBackend(const costmodel::WhatIfBackend* inner,
                        const FaultInjectionOptions& options);

  double BaseCost(costmodel::QueryId j) const override;
  double CostWithIndex(costmodel::QueryId j,
                       const costmodel::Index& k) const override;
  double CostWithConfig(costmodel::QueryId j,
                        const costmodel::IndexConfig& config) const override;
  double IndexMemory(const costmodel::Index& k) const override;
  double MaintenanceCost(costmodel::QueryId j,
                         const costmodel::Index& k) const override;

  /// Snapshot of the per-kind counters (consistent under concurrency).
  FaultInjectionStats stats() const {
    common::MutexLock lock(&mu_);
    return stats_;
  }

 private:
  /// Applies latency + value corruption to one truthful answer.
  double Corrupt(double truthful) const;

  const costmodel::WhatIfBackend* inner_;
  FaultInjectionOptions opts_;
  // WhatIfBackend's interface is const; the chaos state (PRNG position,
  // call counter, stats) is the decorator's own business.
  mutable common::Mutex mu_;
  mutable Rng rng_ IDXSEL_GUARDED_BY(mu_);
  mutable FaultInjectionStats stats_ IDXSEL_GUARDED_BY(mu_);
  // Recurring burst-outage cursor (guarded by mu_): calls remaining in
  // the current healthy gap / failing burst. The gap stream draws from a
  // dedicated forked Rng so enabling the mode does not shift the
  // value-corruption draw schedule of existing seeds.
  mutable Rng outage_rng_ IDXSEL_GUARDED_BY(mu_);
  mutable uint64_t gap_remaining_ IDXSEL_GUARDED_BY(mu_) = 0;
  mutable uint64_t burst_remaining_ IDXSEL_GUARDED_BY(mu_) = 0;
};

}  // namespace idxsel::rt

#endif  // IDXSEL_RT_FAULT_INJECTION_H_
