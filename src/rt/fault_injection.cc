#include "rt/fault_injection.h"

#include <chrono>
#include <limits>
#include <thread>

#include "common/check.h"
#include "common/float_cmp.h"
#include "common/hash.h"
#include "obs/obs.h"

namespace idxsel::rt {
namespace {

#if defined(IDXSEL_OBS)
obs::Counter* InjectedCounter() {
  static obs::Counter* counter =
      obs::Registry::Default().GetCounter("idxsel.rt.fault_injected");
  return counter;
}
#endif

}  // namespace

FaultInjectingBackend::FaultInjectingBackend(
    const costmodel::WhatIfBackend* inner,
    const FaultInjectionOptions& options)
    : inner_(inner),
      opts_(options),
      rng_(options.seed),
      outage_rng_(SplitMix64(options.seed ^ 0x6f757461676500ULL)) {
  IDXSEL_CHECK(inner != nullptr);
  if (opts_.outage_burst > 0) {
    IDXSEL_CHECK_LE(opts_.outage_gap_min, opts_.outage_gap_max);
    gap_remaining_ = static_cast<uint64_t>(outage_rng_.UniformInt(
        static_cast<int64_t>(opts_.outage_gap_min),
        static_cast<int64_t>(opts_.outage_gap_max)));
  }
}

double FaultInjectingBackend::Corrupt(double truthful) const {
  // The draw, counter, and stats updates happen under the lock; the
  // injected latency is slept *after* releasing it, so one stalled call
  // does not serialize concurrent lanes (and TSan sees no lock held
  // across a sleep).
  bool sleep = false;
  double result = truthful;
  {
    common::MutexLock lock(&mu_);
    const uint64_t call = stats_.calls++;
    if (call < opts_.healthy_calls) return truthful;

    // Transient outage window dominates every probabilistic draw.
    if (opts_.fail_burst > 0 && call >= opts_.fail_after_calls &&
        call < opts_.fail_after_calls + opts_.fail_burst) {
      ++stats_.injected_outage;
      IDXSEL_OBS_ONLY(InjectedCounter()->Add();)
      return std::numeric_limits<double>::quiet_NaN();
    }

    // Recurring burst outages (seeded gap stream, see the options docs).
    if (opts_.outage_burst > 0) {
      if (burst_remaining_ > 0) {
        --burst_remaining_;
        if (burst_remaining_ == 0) {
          gap_remaining_ = static_cast<uint64_t>(outage_rng_.UniformInt(
              static_cast<int64_t>(opts_.outage_gap_min),
              static_cast<int64_t>(opts_.outage_gap_max)));
        }
        ++stats_.injected_outage;
        IDXSEL_OBS_ONLY(InjectedCounter()->Add();)
        return std::numeric_limits<double>::quiet_NaN();
      }
      if (gap_remaining_ == 0) {
        burst_remaining_ = opts_.outage_burst - 1;
        if (burst_remaining_ == 0) {
          gap_remaining_ = static_cast<uint64_t>(outage_rng_.UniformInt(
              static_cast<int64_t>(opts_.outage_gap_min),
              static_cast<int64_t>(opts_.outage_gap_max)));
        }
        ++stats_.injected_outage;
        IDXSEL_OBS_ONLY(InjectedCounter()->Add();)
        return std::numeric_limits<double>::quiet_NaN();
      }
      --gap_remaining_;
    }

    if (opts_.latency_probability > 0.0 &&
        rng_.NextDouble() < opts_.latency_probability) {
      ++stats_.injected_latency;
      IDXSEL_OBS_ONLY(InjectedCounter()->Add();)
      sleep = true;
    }

    // Value corruptions are mutually exclusive: one draw, first band wins
    // — keeps the draw count per call fixed so seeds stay comparable
    // across option changes.
    const double draw = rng_.NextDouble();
    double band = opts_.nan_probability;
    if (draw < band) {
      ++stats_.injected_nan;
      IDXSEL_OBS_ONLY(InjectedCounter()->Add();)
      result = std::numeric_limits<double>::quiet_NaN();
    } else if (draw < (band += opts_.inf_probability)) {
      ++stats_.injected_inf;
      IDXSEL_OBS_ONLY(InjectedCounter()->Add();)
      result = std::numeric_limits<double>::infinity();
    } else if (draw < (band += opts_.negative_probability)) {
      ++stats_.injected_negative;
      IDXSEL_OBS_ONLY(InjectedCounter()->Add();)
      result = !ExactlyZero(truthful) ? -truthful : -1.0;
    }
  }
  if (sleep) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opts_.latency_seconds));
  }
  return result;
}

double FaultInjectingBackend::BaseCost(costmodel::QueryId j) const {
  return Corrupt(inner_->BaseCost(j));
}

double FaultInjectingBackend::CostWithIndex(costmodel::QueryId j,
                                            const costmodel::Index& k) const {
  return Corrupt(inner_->CostWithIndex(j, k));
}

double FaultInjectingBackend::CostWithConfig(
    costmodel::QueryId j, const costmodel::IndexConfig& config) const {
  return Corrupt(inner_->CostWithConfig(j, config));
}

double FaultInjectingBackend::IndexMemory(const costmodel::Index& k) const {
  return Corrupt(inner_->IndexMemory(k));
}

double FaultInjectingBackend::MaintenanceCost(costmodel::QueryId j,
                                              const costmodel::Index& k) const {
  return Corrupt(inner_->MaintenanceCost(j, k));
}

}  // namespace idxsel::rt
