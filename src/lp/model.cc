#include "lp/model.h"

namespace idxsel::lp {

uint32_t Model::AddVariable(double cost, double upper) {
  IDXSEL_CHECK_GE(upper, 0.0);
  objective_.push_back(cost);
  upper_.push_back(upper);
  return static_cast<uint32_t>(objective_.size() - 1);
}

void Model::AddRow(Row row) {
  for (const auto& [var, coeff] : row.terms) {
    IDXSEL_CHECK_LT(var, objective_.size());
    (void)coeff;
  }
  rows_.push_back(std::move(row));
}

}  // namespace idxsel::lp
