// Dense two-phase primal simplex.
//
// Exact (up to floating-point tolerance) LP solver used for the LP
// relaxations of small CoPhy instances and as an independent oracle in the
// solver test-suites. Dense tableau — intended for models up to a few
// thousand variables; the large-instance path goes through the
// combinatorial bounds in idxsel::mip instead.
//
// Pivoting uses Dantzig's rule with a Bland fallback after a stall budget,
// which guarantees termination.

#ifndef IDXSEL_LP_SIMPLEX_H_
#define IDXSEL_LP_SIMPLEX_H_

#include <vector>

#include "common/status.h"
#include "lp/model.h"

namespace idxsel::lp {

/// Solver outcome: primal solution and objective.
struct LpSolution {
  double objective = 0.0;
  std::vector<double> values;  ///< One entry per model variable.
};

/// Options controlling numerical behaviour.
struct SimplexOptions {
  double tolerance = 1e-9;
  uint64_t max_iterations = 1'000'000;
};

/// Solves `model` to optimality.
///
/// Returns kInfeasible when no point satisfies the constraints, and
/// kInvalidArgument for unbounded problems (the models built in this
/// library are always bounded by construction).
Result<LpSolution> SolveLp(const Model& model, SimplexOptions options = {});

}  // namespace idxsel::lp

#endif  // IDXSEL_LP_SIMPLEX_H_
