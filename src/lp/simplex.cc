#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/float_cmp.h"

namespace idxsel::lp {
namespace {

/// Full-tableau simplex working state over the standard-form problem
///   minimize c^T x   s.t.  A x = b,  x >= 0,  b >= 0.
class Tableau {
 public:
  Tableau(size_t rows, size_t cols)
      : m_(rows), n_(cols), a_(rows, std::vector<double>(cols + 1, 0.0)),
        basis_(rows, 0) {}

  double& At(size_t r, size_t c) { return a_[r][c]; }
  double& Rhs(size_t r) { return a_[r][n_]; }
  size_t num_rows() const { return m_; }
  size_t num_cols() const { return n_; }
  uint32_t basis(size_t r) const { return basis_[r]; }
  void set_basis(size_t r, uint32_t col) { basis_[r] = col; }

  /// Runs simplex iterations on objective `cost` (minimization), entering
  /// only columns where `allowed[col]` holds. Returns false on iteration
  /// exhaustion, true on optimality. `unbounded` is set if detected.
  bool Optimize(const std::vector<double>& cost,
                const std::vector<char>& allowed, const SimplexOptions& opts,
                bool* unbounded) {
    *unbounded = false;
    // Reduced-cost row d = cost - cost_B^T * tableau.
    std::vector<double> d(n_ + 1, 0.0);
    for (size_t j = 0; j < n_; ++j) d[j] = cost[j];
    d[n_] = 0.0;
    for (size_t r = 0; r < m_; ++r) {
      const double cb = cost[basis_[r]];
      if (ExactlyZero(cb)) continue;
      for (size_t j = 0; j <= n_; ++j) d[j] -= cb * a_[r][j];
    }

    uint64_t iter = 0;
    uint64_t stall = 0;
    double last_obj = -d[n_];
    while (iter++ < opts.max_iterations) {
      const bool bland = stall > 512;
      // Entering column.
      size_t enter = n_;
      double best = -opts.tolerance;
      for (size_t j = 0; j < n_; ++j) {
        if (!allowed[j]) continue;
        if (d[j] < best) {
          best = d[j];
          enter = j;
          if (bland) break;  // Bland: first improving index
        }
      }
      if (enter == n_) return true;  // optimal

      // Ratio test.
      size_t leave = m_;
      double best_ratio = 0.0;
      for (size_t r = 0; r < m_; ++r) {
        if (a_[r][enter] <= opts.tolerance) continue;
        const double ratio = a_[r][n_] / a_[r][enter];
        if (leave == m_ || ratio < best_ratio - opts.tolerance ||
            (std::abs(ratio - best_ratio) <= opts.tolerance &&
             basis_[r] < basis_[leave])) {
          leave = r;
          best_ratio = ratio;
        }
      }
      if (leave == m_) {
        *unbounded = true;
        return true;
      }

      Pivot(leave, enter, &d);
      const double obj = -d[n_];
      if (obj < last_obj - opts.tolerance) {
        stall = 0;
        last_obj = obj;
      } else {
        ++stall;
      }
    }
    return false;
  }

  double ObjectiveOf(const std::vector<double>& cost) const {
    double obj = 0.0;
    for (size_t r = 0; r < m_; ++r) obj += cost[basis_[r]] * a_[r][n_];
    return obj;
  }

  /// Value of variable `col` in the current basic solution.
  double Value(uint32_t col) const {
    for (size_t r = 0; r < m_; ++r) {
      if (basis_[r] == col) return a_[r][n_];
    }
    return 0.0;
  }

  /// Pivots (leave_row, enter_col) and updates reduced costs `d` when given.
  void Pivot(size_t leave, size_t enter, std::vector<double>* d) {
    const double pivot = a_[leave][enter];
    for (size_t j = 0; j <= n_; ++j) a_[leave][j] /= pivot;
    a_[leave][enter] = 1.0;  // exact
    for (size_t r = 0; r < m_; ++r) {
      if (r == leave) continue;
      const double factor = a_[r][enter];
      if (ExactlyZero(factor)) continue;
      for (size_t j = 0; j <= n_; ++j) a_[r][j] -= factor * a_[leave][j];
      a_[r][enter] = 0.0;
    }
    if (d != nullptr) {
      const double factor = (*d)[enter];
      if (!ExactlyZero(factor)) {
        for (size_t j = 0; j <= n_; ++j) (*d)[j] -= factor * a_[leave][j];
        (*d)[enter] = 0.0;
      }
    }
    basis_[leave] = static_cast<uint32_t>(enter);
  }

  /// Drops row `r` (used for redundant rows after phase 1).
  void DropRow(size_t r) {
    a_.erase(a_.begin() + static_cast<long>(r));
    basis_.erase(basis_.begin() + static_cast<long>(r));
    --m_;
  }

 private:
  size_t m_;
  size_t n_;
  std::vector<std::vector<double>> a_;
  std::vector<uint32_t> basis_;
};

}  // namespace

Result<LpSolution> SolveLp(const Model& model, SimplexOptions opts) {
  const size_t n0 = model.num_variables();

  // Assemble the normalized row list: model rows plus upper-bound rows.
  struct NormRow {
    std::vector<std::pair<uint32_t, double>> terms;
    Sense sense;
    double rhs;
  };
  std::vector<NormRow> rows;
  rows.reserve(model.num_rows());
  for (const Row& row : model.rows()) {
    rows.push_back(NormRow{row.terms, row.sense, row.rhs});
  }
  for (uint32_t v = 0; v < n0; ++v) {
    const double upper = model.upper_bound(v);
    if (std::isfinite(upper)) {
      rows.push_back(NormRow{{{v, 1.0}}, Sense::kLe, upper});
    }
  }

  // Column layout: [original | slack/surplus | artificial].
  const size_t m = rows.size();
  size_t num_slack = 0;
  for (const NormRow& row : rows) {
    if (row.sense != Sense::kEq) ++num_slack;
  }
  const size_t slack_base = n0;
  const size_t art_base = n0 + num_slack;
  const size_t n_total = art_base + m;  // worst case: one artificial per row

  Tableau tab(m, n_total);
  size_t next_slack = slack_base;
  size_t next_art = art_base;
  std::vector<char> is_artificial(n_total, 0);

  for (size_t r = 0; r < m; ++r) {
    NormRow row = rows[r];
    double sign = 1.0;
    if (row.rhs < 0.0) {
      sign = -1.0;
      row.rhs = -row.rhs;
      row.sense = row.sense == Sense::kLe
                      ? Sense::kGe
                      : (row.sense == Sense::kGe ? Sense::kLe : Sense::kEq);
    }
    for (const auto& [var, coeff] : row.terms) {
      tab.At(r, var) += sign * coeff;
    }
    tab.Rhs(r) = row.rhs;

    if (row.sense == Sense::kLe) {
      const size_t s = next_slack++;
      tab.At(r, s) = 1.0;
      tab.set_basis(r, static_cast<uint32_t>(s));
    } else {
      if (row.sense == Sense::kGe) {
        const size_t s = next_slack++;
        tab.At(r, s) = -1.0;
      }
      const size_t art = next_art++;
      tab.At(r, art) = 1.0;
      is_artificial[art] = 1;
      tab.set_basis(r, static_cast<uint32_t>(art));
    }
  }

  std::vector<char> allowed(n_total, 1);

  // Phase 1: drive artificials to zero.
  bool have_artificials = next_art > art_base;
  if (have_artificials) {
    std::vector<double> phase1_cost(n_total, 0.0);
    for (size_t j = art_base; j < next_art; ++j) phase1_cost[j] = 1.0;
    bool unbounded = false;
    if (!tab.Optimize(phase1_cost, allowed, opts, &unbounded)) {
      return Status::ResourceLimit("simplex phase-1 iteration limit");
    }
    IDXSEL_CHECK(!unbounded);  // phase-1 objective is bounded below by 0
    if (tab.ObjectiveOf(phase1_cost) > 1e-6) {
      return Status::Infeasible("no feasible point");
    }
    // Pivot remaining basic artificials out; drop redundant rows.
    for (size_t r = tab.num_rows(); r-- > 0;) {
      if (!is_artificial[tab.basis(r)]) continue;
      size_t enter = n_total;
      for (size_t j = 0; j < art_base; ++j) {
        if (std::abs(tab.At(r, j)) > 1e-7) {
          enter = j;
          break;
        }
      }
      if (enter == n_total) {
        tab.DropRow(r);
      } else {
        tab.Pivot(r, enter, nullptr);
      }
    }
    for (size_t j = art_base; j < n_total; ++j) allowed[j] = 0;
  }

  // Phase 2: original objective.
  std::vector<double> cost(n_total, 0.0);
  for (uint32_t v = 0; v < n0; ++v) cost[v] = model.objective_coeff(v);
  bool unbounded = false;
  if (!tab.Optimize(cost, allowed, opts, &unbounded)) {
    return Status::ResourceLimit("simplex phase-2 iteration limit");
  }
  if (unbounded) {
    return Status::InvalidArgument("LP is unbounded");
  }

  LpSolution solution;
  solution.values.resize(n0);
  for (uint32_t v = 0; v < n0; ++v) solution.values[v] = tab.Value(v);
  solution.objective = tab.ObjectiveOf(cost);
  return solution;
}

}  // namespace idxsel::lp
