// Linear-program model container.
//
// Holds a minimization LP in the general form
//   minimize    c^T x
//   subject to  a_r^T x {<=,=,>=} b_r   for each row r
//               0 <= x_i <= u_i
// CoPhy's selection LP (eqs. 5-8) is instantiated on this model by the
// cophy module, both for actually solving small instances (via lp::Solver)
// and for reporting the variable/constraint counts of Figure 6 / Table I.

#ifndef IDXSEL_LP_MODEL_H_
#define IDXSEL_LP_MODEL_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"

namespace idxsel::lp {

/// Relational sense of one constraint row.
enum class Sense { kLe, kEq, kGe };

/// Sparse constraint row: sum of coeff * variable {sense} rhs.
struct Row {
  std::vector<std::pair<uint32_t, double>> terms;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

/// A minimization LP with non-negative, optionally box-bounded variables.
class Model {
 public:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  /// Adds a variable with objective coefficient `cost` and bounds
  /// [0, upper]; returns its column id.
  uint32_t AddVariable(double cost, double upper = kInfinity);

  /// Adds a constraint row; variable ids must already exist.
  void AddRow(Row row);

  size_t num_variables() const { return objective_.size(); }
  size_t num_rows() const { return rows_.size(); }

  double objective_coeff(uint32_t var) const { return objective_[var]; }
  double upper_bound(uint32_t var) const { return upper_[var]; }
  const Row& row(size_t r) const { return rows_[r]; }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<double> objective_;
  std::vector<double> upper_;
  std::vector<Row> rows_;
};

}  // namespace idxsel::lp

#endif  // IDXSEL_LP_MODEL_H_
