// Exact branch-and-bound solver for the index-selection binary program.
//
// Stands in for the paper's CPLEX runs (Table I: "CPLEX 12.7, mipgap=0.05,
// via NEOS"). The solver maximizes the workload *benefit*
// B(S) = sum_j b_j * max(0, f_j(0) - min_{k in S} f_j(k)), which is a
// monotone submodular set function, subject to the memory knapsack.
//
// Bounding: at a node with committed set S1 and free candidates R, by
// submodularity  B(S1 + R') <= B(S1) + sum_{k in R'} mu_k(S1)  where
// mu_k(S1) is k's marginal benefit against S1. The node bound is therefore
// B(S1) plus the *fractional knapsack* optimum over R with values mu_k and
// weights p_k — computed in O(|R| log |R|) per node without any LP.
//
// Incumbents come from a density-greedy completion at the root; branching
// follows the fractional knapsack's critical item, include-branch first.
// A MIP gap and a wall-clock deadline terminate early exactly like CPLEX's
// mipgap / time-limit parameters (a deadline hit reports kTimeout with the
// incumbent attached — the paper's "DNF").

#ifndef IDXSEL_MIP_BRANCH_AND_BOUND_H_
#define IDXSEL_MIP_BRANCH_AND_BOUND_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "mip/problem.h"

namespace idxsel::mip {

/// Termination controls, mirroring CPLEX's mipgap / time limit.
struct SolveOptions {
  /// Relative optimality gap at which search stops: stop once
  /// (incumbent - bound) / max(|incumbent|, 1e-10) <= mip_gap.
  double mip_gap = 0.0;
  /// Wall-clock limit in seconds; exceeded => kTimeout with incumbent.
  double time_limit_seconds = std::numeric_limits<double>::infinity();
  /// Hard cap on explored nodes; exceeded => kResourceLimit with incumbent.
  uint64_t max_nodes = std::numeric_limits<uint64_t>::max();
  /// Absolute deadline / cancellation shared with the rest of the pipeline
  /// (rt layer); checked at the same amortized cadence as
  /// `time_limit_seconds` and likewise reports kTimeout with the incumbent.
  /// Both limits apply; whichever fires first stops the search.
  rt::Deadline deadline;
  /// Worker threads for parallel subtree exploration. 1 = the classic
  /// serial DFS (default), 0 = auto (exec::DefaultThreads()), n = n lanes.
  /// The parallel path splits the tree into a fixed, thread-count
  /// independent set of subproblems (deterministic BFS using the serial
  /// branching rule), solves them on a work-stealing pool with a shared
  /// atomic incumbent used only for *bound-safe* pruning, and reduces the
  /// per-subtree optima in DFS order — so the optimality guarantee (gap)
  /// is identical to serial, and the returned selection is independent of
  /// the thread count. See doc/parallelism.md for the exactness argument.
  size_t threads = 1;
};

/// Solver output. `status` is Ok when the gap target was proven, kTimeout /
/// kResourceLimit when stopped early (the incumbent is still valid).
struct SolveResult {
  Status status;
  std::vector<uint32_t> selected;  ///< Candidate positions (canonical ids).
  double objective = 0.0;          ///< sum_j b_j f_j(selection).
  double best_bound = 0.0;         ///< Proven lower bound on the objective.
  double gap = 0.0;                ///< Final relative gap.
  uint64_t nodes = 0;
  uint64_t bound_cutoffs = 0;      ///< Subtrees pruned by the node bound.
  uint64_t incumbent_updates = 0;  ///< Strict incumbent improvements.
  double seconds_to_best = 0.0;    ///< Wall time until the final incumbent.
  double wall_seconds = 0.0;
  bool proven_optimal = false;     ///< gap <= mip_gap achieved.
};

/// Solves the given (already canonicalized) problem.
SolveResult Solve(const Problem& problem, const SolveOptions& options = {});

/// Density-greedy heuristic on its own: repeatedly adds the affordable
/// candidate with the best marginal-benefit-per-byte until the budget is
/// exhausted (lazy/CELF evaluation). Used for root incumbents and exposed
/// for the H5-style baselines.
std::vector<uint32_t> GreedyByDensity(const Problem& problem);

}  // namespace idxsel::mip

#endif  // IDXSEL_MIP_BRANCH_AND_BOUND_H_
