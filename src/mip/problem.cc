#include "mip/problem.h"

#include <algorithm>

namespace idxsel::mip {

std::vector<uint32_t> Problem::Canonicalize() {
  IDXSEL_CHECK_EQ(query_weight.size(), base_cost.size());
  IDXSEL_CHECK_EQ(candidate_costs.size(), candidate_memory.size());

  const bool penalties = has_penalties();
  if (penalties) {
    IDXSEL_CHECK_EQ(candidate_penalty.size(), candidate_costs.size());
  }

  std::vector<uint32_t> mapping;
  mapping.reserve(candidate_costs.size());
  std::vector<std::vector<QueryCost>> kept_costs;
  std::vector<double> kept_memory;
  std::vector<double> kept_penalty;
  for (uint32_t k = 0; k < candidate_costs.size(); ++k) {
    std::vector<QueryCost>& list = candidate_costs[k];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](const QueryCost& qc) {
                                IDXSEL_DCHECK(qc.query < base_cost.size());
                                return qc.cost >= base_cost[qc.query];
                              }),
               list.end());
    if (list.empty() || candidate_memory[k] > budget) continue;
    if (penalties) {
      // Drop candidates whose maintenance penalty already exceeds the
      // largest benefit they could ever deliver.
      double max_gain = 0.0;
      for (const QueryCost& qc : list) {
        max_gain += query_weight[qc.query] * (base_cost[qc.query] - qc.cost);
      }
      if (candidate_penalty[k] >= max_gain) continue;
    }
    mapping.push_back(k);
    kept_costs.push_back(std::move(list));
    kept_memory.push_back(candidate_memory[k]);
    if (penalties) kept_penalty.push_back(candidate_penalty[k]);
  }
  candidate_costs = std::move(kept_costs);
  candidate_memory = std::move(kept_memory);
  candidate_penalty = std::move(kept_penalty);
  return mapping;
}

}  // namespace idxsel::mip
