#include "mip/branch_and_bound.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <queue>

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "exec/thread_pool.h"
#include "obs/obs.h"

namespace idxsel::mip {
namespace {

constexpr double kEps = 1e-9;

/// State shared by every engine of one parallel solve. The incumbent
/// benefit is a monotone max used *only* to strengthen pruning (any pruned
/// subtree is provably within the optimality gap of some achieved
/// solution, exactly the serial guarantee); each engine keeps recording
/// incumbents locally so the reduction stays timing-independent.
struct SharedState {
  std::atomic<double> best_benefit{0.0};
  std::atomic<uint64_t> nodes{0};
  std::atomic<bool> stopped{false};
  std::atomic<bool> timeout{false};
};

void AtomicMax(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value > cur &&
         !target.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
  }
}

/// One branching decision along a path from the root.
struct Decision {
  uint32_t k = 0;
  bool in = false;
};

/// DFS visit order of two subtree roots (include branch first). Paths from
/// one splitter form an antichain, so the first differing decision decides.
bool DfsBefore(const std::vector<Decision>& a,
               const std::vector<Decision>& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i].k != b[i].k) return a[i].k < b[i].k;  // defensive; see above
    if (a[i].in != b[i].in) return a[i].in;
  }
  return a.size() < b.size();
}

/// Depth-first branch-and-bound engine; see header for the method. With a
/// SharedState attached it doubles as the splitter / per-subtree worker of
/// the parallel solve.
class Engine {
 public:
  Engine(const Problem& problem, const SolveOptions& options,
         SharedState* shared = nullptr, const Stopwatch* clock = nullptr)
      : p_(problem),
        opts_(options),
        shared_(shared),
        clock_(clock != nullptr ? clock : &own_watch_),
        state_(problem.num_candidates(), kFree),
        cur_cost_(problem.base_cost) {}

  SolveResult Run() {
    IDXSEL_OBS_SPAN(solve_span, "mip", "mip.solve");
    SeedGreedy();
    Dfs(0.0);

    SolveResult result;
    result.nodes = nodes_;
    result.bound_cutoffs = bound_cutoffs_;
    result.incumbent_updates = incumbent_updates_;
    result.seconds_to_best = seconds_to_best_;
    result.wall_seconds = clock_->ElapsedSeconds();
    result.objective = p_.TotalBaseCost() - incumbent_benefit_;
    result.selected = incumbent_;
    // Proven bound: explored subtrees are exact; pruned/abandoned ones
    // contribute their recorded cost lower bounds.
    result.best_bound = std::min(result.objective, pruned_lb_min_);
    result.gap = Gap(result.objective, result.best_bound);
    result.proven_optimal = !stopped_ && result.gap <= opts_.mip_gap + kEps;
    if (stopped_) {
      result.status = timeout_ ? Status::Timeout("time limit reached")
                               : Status::ResourceLimit("node limit reached");
    } else {
      result.status = Status::Ok();
    }
#if defined(IDXSEL_OBS)
    PublishObs(result);
    if (obs::Enabled()) {
      solve_span.SetArg("nodes", static_cast<double>(nodes_));
    }
#endif
    return result;
  }

  static double Gap(double objective, double bound) {
    const double denom = std::max(std::abs(objective), 1e-10);
    return std::max(0.0, objective - bound) / denom;
  }

#if defined(IDXSEL_OBS)
  static void PublishObs(const SolveResult& result) {
    obs::Registry& registry = obs::Registry::Default();
    registry.GetCounter("idxsel.mip.solves")->Add(1);
    registry.GetCounter("idxsel.mip.nodes")->Add(result.nodes);
    registry.GetCounter("idxsel.mip.bound_cutoffs")->Add(result.bound_cutoffs);
    registry.GetCounter("idxsel.mip.incumbent_updates")
        ->Add(result.incumbent_updates);
    registry.GetGauge("idxsel.mip.last_time_to_incumbent_ns")
        ->Set(static_cast<int64_t>(result.seconds_to_best * 1e9));
    if (obs::Enabled()) {
      registry.GetHistogram("idxsel.mip.solve_latency_ns")
          ->Record(static_cast<uint64_t>(result.wall_seconds * 1e9));
    }
  }
#endif

  /// Root incumbent from lazy density greedy.
  void SeedGreedy() {
    const std::vector<uint32_t> greedy = GreedyByDensity(p_);
    double greedy_benefit = 0.0;
    std::vector<std::pair<uint32_t, double>> undo;
    for (uint32_t k : greedy) greedy_benefit += Apply(k, &undo);
    RecordGreedyIncumbent(greedy, greedy_benefit);
    for (uint32_t k : greedy) used_memory_ -= p_.candidate_memory[k];
    Revert(undo);
  }

  /// Adopts a known-feasible incumbent without counting an update (the
  /// engine that found it already did).
  void SeedIncumbent(std::vector<uint32_t> selection, double benefit) {
    incumbent_ = std::move(selection);
    incumbent_benefit_ = benefit;
  }

  /// Splitter probe of one node: replays `path`, evaluates the node with
  /// the serial bound/branch logic (counting it as an explored node), and
  /// restores the root state. `resolved` means the node needs no
  /// branching (leaf / monotone shortcut / pruned / stopped) and any
  /// incumbent or bound it produced has been recorded.
  struct Expansion {
    bool resolved = true;
    uint32_t branch_k = 0;
    double node_ub = 0.0;
  };
  Expansion ExpandPath(const std::vector<Decision>& path) {
    std::vector<std::pair<uint32_t, double>> undo;
    const double benefit = ApplyPath(path, &undo);
    ++nodes_;
    if (shared_ != nullptr) {
      shared_->nodes.fetch_add(1, std::memory_order_relaxed);
    }
    const NodeEval ev = EvaluateNode(benefit);
    RevertPath(path, undo);
    return Expansion{ev.resolved, ev.branch_k, ev.node_ub};
  }

  /// Per-subtree worker entry: replays `path` and exhausts the subtree.
  void RunSubtree(const std::vector<Decision>& path) {
    std::vector<std::pair<uint32_t, double>> undo;
    const double benefit = ApplyPath(path, &undo);
    Dfs(benefit);
    // No revert: the engine is dedicated to this subtree.
  }

  double incumbent_benefit() const { return incumbent_benefit_; }
  const std::vector<uint32_t>& incumbent() const { return incumbent_; }
  double pruned_lb_min() const { return pruned_lb_min_; }
  uint64_t nodes() const { return nodes_; }
  uint64_t bound_cutoffs() const { return bound_cutoffs_; }
  uint64_t incumbent_updates() const { return incumbent_updates_; }
  double seconds_to_best() const { return seconds_to_best_; }
  bool stopped() const { return stopped_; }
  bool timed_out() const { return timeout_; }

 private:
  enum CandidateState : char { kFree = 0, kIn = 1, kOut = 2 };

  /// Exact *net* marginal benefit of k against the current cur_cost_
  /// state: read gains minus k's modular selection penalty.
  double Marginal(uint32_t k) const {
    double mu = -p_.penalty(k);
    for (const QueryCost& qc : p_.candidate_costs[k]) {
      const double gain = cur_cost_[qc.query] - qc.cost;
      if (gain > 0.0) mu += p_.query_weight[qc.query] * gain;
    }
    return mu;
  }

  /// Commits k: updates per-query costs (with undo log) and the running
  /// memory total; returns the exact net marginal benefit realized.
  double Apply(uint32_t k, std::vector<std::pair<uint32_t, double>>* undo) {
    double mu = -p_.penalty(k);
    for (const QueryCost& qc : p_.candidate_costs[k]) {
      const double gain = cur_cost_[qc.query] - qc.cost;
      if (gain > 0.0) {
        mu += p_.query_weight[qc.query] * gain;
        undo->emplace_back(qc.query, cur_cost_[qc.query]);
        cur_cost_[qc.query] = qc.cost;
      }
    }
    used_memory_ += p_.candidate_memory[k];
    return mu;
  }

  void Revert(const std::vector<std::pair<uint32_t, double>>& undo) {
    // Replay in reverse so overlapping updates restore correctly.
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      cur_cost_[it->first] = it->second;
    }
  }

  /// Replays a decision path from the root state; the returned benefit is
  /// accumulated include-by-include, i.e. with the same FP summation order
  /// the serial DFS would use reaching this node.
  double ApplyPath(const std::vector<Decision>& path,
                   std::vector<std::pair<uint32_t, double>>* undo) {
    double benefit = 0.0;
    for (const Decision& d : path) {
      state_[d.k] = d.in ? kIn : kOut;
      if (d.in) benefit += Apply(d.k, undo);
    }
    return benefit;
  }

  void RevertPath(const std::vector<Decision>& path,
                  const std::vector<std::pair<uint32_t, double>>& undo) {
    Revert(undo);
    for (const Decision& d : path) {
      if (d.in) used_memory_ -= p_.candidate_memory[d.k];
      state_[d.k] = kFree;
    }
  }

  void RecordIncumbent(double benefit) {
    if (benefit > incumbent_benefit_ + kEps) {
      incumbent_benefit_ = benefit;
      incumbent_.clear();
      for (uint32_t k = 0; k < state_.size(); ++k) {
        if (state_[k] == kIn) incumbent_.push_back(k);
      }
      NoteIncumbentImproved();
    }
  }

  /// Records an incumbent coming from the root greedy (selection passed in
  /// `GreedyByDensity` order rather than via state_).
  void RecordGreedyIncumbent(const std::vector<uint32_t>& selection,
                             double benefit) {
    if (benefit > incumbent_benefit_ + kEps) {
      incumbent_benefit_ = benefit;
      incumbent_ = selection;
      NoteIncumbentImproved();
    }
  }

  /// Telemetry on strict incumbent improvements: count them and remember
  /// when the (eventually final) incumbent was reached — the
  /// time-to-incumbent the paper's DNF discussion cares about. Improved
  /// incumbents also strengthen every other lane's pruning via the shared
  /// monotone best.
  void NoteIncumbentImproved() {
    ++incumbent_updates_;
    seconds_to_best_ = clock_->ElapsedSeconds();
    if (shared_ != nullptr) {
      AtomicMax(shared_->best_benefit, incumbent_benefit_);
    }
  }

  bool Deadline() {
    if (stopped_) return true;
    if (shared_ != nullptr &&
        shared_->stopped.load(std::memory_order_relaxed)) {
      stopped_ = true;
      timeout_ = shared_->timeout.load(std::memory_order_relaxed);
      return true;
    }
    const uint64_t nodes_seen =
        shared_ != nullptr ? shared_->nodes.load(std::memory_order_relaxed)
                           : nodes_;
    if (nodes_seen >= opts_.max_nodes) {
      stopped_ = true;
      timeout_ = false;
      Broadcast();
      return true;
    }
    if ((nodes_ & 0x3f) == 0 &&
        (clock_->ElapsedSeconds() > opts_.time_limit_seconds ||
         opts_.deadline.expired())) {
      stopped_ = true;
      timeout_ = true;
      Broadcast();
      return true;
    }
    return false;
  }

  void Broadcast() {
    if (shared_ == nullptr) return;
    // timeout before stopped: a lane observing stopped sees why.
    shared_->timeout.store(timeout_, std::memory_order_relaxed);
    shared_->stopped.store(true, std::memory_order_release);
  }

  void RecordPrunedBound(double node_benefit_ub) {
    const double lb = p_.TotalBaseCost() - node_benefit_ub;
    pruned_lb_min_ = std::min(pruned_lb_min_, lb);
  }

  /// Evaluation of one node: bounds, leaf/shortcut resolution, pruning and
  /// deadline handling — everything the serial DFS does before branching.
  /// `resolved` means no subtree exploration is needed (and any incumbent
  /// or pruned bound was recorded); otherwise branch on `branch_k` (the
  /// fractional knapsack's critical item), include branch first.
  struct NodeEval {
    bool resolved = true;
    uint32_t branch_k = 0;
    double node_ub = 0.0;
  };
  NodeEval EvaluateNode(double current_benefit) {
    // Two complementary upper bounds on the additional benefit:
    //  * fractional knapsack over marginal values (budget-aware, but
    //    overcounts when candidates cannibalize each other), and
    //  * per-query potential: no query can improve past the cheapest cost
    //    any affordable free candidate offers it (overlap-aware, but
    //    budget-blind).
    // The node bound is the minimum of the two.
    struct Item {
      double mu;
      double density;
      uint32_t k;
    };
    std::vector<Item> items;
    const double remaining = p_.budget - used_memory_;
    query_floor_ = cur_cost_;
    for (uint32_t k = 0; k < state_.size(); ++k) {
      if (state_[k] != kFree) continue;
      if (p_.candidate_memory[k] > remaining + kEps) continue;
      const double mu = Marginal(k);
      if (mu <= kEps) continue;
      for (const QueryCost& qc : p_.candidate_costs[k]) {
        if (qc.cost < query_floor_[qc.query]) {
          query_floor_[qc.query] = qc.cost;
        }
      }
      items.push_back(Item{mu, mu / std::max(kEps, p_.candidate_memory[k]), k});
    }

    if (items.empty()) {
      RecordIncumbent(current_benefit);
      return NodeEval{};
    }

    // Monotonicity shortcut: without selection penalties, benefits only
    // grow with the selection, so if every remaining beneficial candidate
    // fits the leftover budget simultaneously, taking all of them is the
    // exact subtree optimum — no branching needed. (This also makes the
    // budget-unconstrained case, where the knapsack bound is weakest, O(1)
    // nodes.) With penalties the objective is no longer monotone and the
    // shortcut is disabled.
    double items_weight = 0.0;
    for (const Item& item : items) {
      items_weight += p_.candidate_memory[item.k];
    }
    if (!p_.has_penalties() && items_weight <= remaining + kEps) {
      std::vector<std::pair<uint32_t, double>> undo;
      double benefit = current_benefit;
      for (const Item& item : items) {
        state_[item.k] = kIn;
        benefit += Apply(item.k, &undo);
      }
      RecordIncumbent(benefit);
      for (const Item& item : items) {
        state_[item.k] = kFree;
        used_memory_ -= p_.candidate_memory[item.k];
      }
      Revert(undo);
      return NodeEval{};
    }

    std::sort(items.begin(), items.end(), [](const Item& x, const Item& y) {
      if (x.density != y.density) return x.density > y.density;
      return x.k < y.k;
    });
    double fill = remaining;
    double knapsack = 0.0;
    uint32_t branch_k = items.front().k;
    for (const Item& item : items) {
      const double w = p_.candidate_memory[item.k];
      if (w <= fill) {
        knapsack += item.mu;
        fill -= w;
      } else {
        knapsack += item.mu * (fill / w);
        branch_k = item.k;  // critical item
        break;
      }
    }

    double query_potential = 0.0;
    for (size_t j = 0; j < cur_cost_.size(); ++j) {
      query_potential += p_.query_weight[j] * (cur_cost_[j] - query_floor_[j]);
    }

    const double node_ub =
        current_benefit + std::min(knapsack, query_potential);
    // Pruning uses the strongest achieved benefit available — the shared
    // monotone best under parallel solves — with the serial gap margin, so
    // a pruned subtree is always within the optimality gap of a solution
    // some lane has actually recorded.
    double pruning_benefit = incumbent_benefit_;
    if (shared_ != nullptr) {
      pruning_benefit = std::max(
          pruning_benefit, shared_->best_benefit.load(std::memory_order_relaxed));
    }
    const double incumbent_cost = p_.TotalBaseCost() - pruning_benefit;
    const double gap_abs =
        opts_.mip_gap * std::max(std::abs(incumbent_cost), 1e-10);
    const double node_lb_cost = p_.TotalBaseCost() - node_ub;
    if (node_lb_cost >= incumbent_cost - gap_abs - kEps) {
      ++bound_cutoffs_;
      RecordPrunedBound(node_ub);
      return NodeEval{};
    }
    if (Deadline()) {
      RecordPrunedBound(node_ub);
      return NodeEval{};
    }
    return NodeEval{false, branch_k, node_ub};
  }

  void Dfs(double current_benefit) {
    ++nodes_;
    if (shared_ != nullptr) {
      shared_->nodes.fetch_add(1, std::memory_order_relaxed);
    }
    const NodeEval ev = EvaluateNode(current_benefit);
    if (ev.resolved) return;

    // Include branch first (greedy-like dive).
    {
      state_[ev.branch_k] = kIn;
      std::vector<std::pair<uint32_t, double>> undo;
      const double mu = Apply(ev.branch_k, &undo);
      Dfs(current_benefit + mu);
      used_memory_ -= p_.candidate_memory[ev.branch_k];
      Revert(undo);
      state_[ev.branch_k] = kFree;
    }
    if (stopped_) {
      // The exclude branch is abandoned; its optimum is covered by node_ub.
      RecordPrunedBound(ev.node_ub);
      return;
    }
    {
      state_[ev.branch_k] = kOut;
      Dfs(current_benefit);
      state_[ev.branch_k] = kFree;
    }
  }

  const Problem& p_;
  SolveOptions opts_;
  SharedState* shared_;
  Stopwatch own_watch_;
  const Stopwatch* clock_;  ///< Shared solve clock under parallel runs.

  std::vector<char> state_;
  std::vector<double> cur_cost_;
  double used_memory_ = 0.0;

  double incumbent_benefit_ = 0.0;
  std::vector<uint32_t> incumbent_;

  std::vector<double> query_floor_;  // per-node scratch for the query bound
  double pruned_lb_min_ = std::numeric_limits<double>::infinity();
  uint64_t nodes_ = 0;
  uint64_t bound_cutoffs_ = 0;
  uint64_t incumbent_updates_ = 0;
  double seconds_to_best_ = 0.0;
  bool stopped_ = false;
  bool timeout_ = false;
};

/// Parallel solve: deterministic BFS split into a thread-count-independent
/// set of subproblems, work-stealing execution with a shared incumbent for
/// pruning, DFS-ordered deterministic reduction. See doc/parallelism.md.
SolveResult SolveParallel(const Problem& problem, const SolveOptions& opts,
                          size_t threads) {
  IDXSEL_OBS_SPAN(solve_span, "mip", "mip.solve");
  Stopwatch watch;
  SharedState shared;
  Engine splitter(problem, opts, &shared, &watch);
  splitter.SeedGreedy();

  // Phase 1 — deterministic splitter: expand a BFS frontier with the
  // *serial* branching rule until enough open subproblems exist. The
  // target is a constant (not a function of `threads`), so every thread
  // count decomposes the tree identically — the basis of the cross-count
  // determinism guarantee.
  constexpr size_t kSplitTarget = 64;
  struct PathItem {
    std::vector<Decision> path;
    double ub;  ///< Benefit upper bound inherited from the parent node.
  };
  std::deque<PathItem> frontier;
  frontier.push_back(
      PathItem{{}, std::numeric_limits<double>::infinity()});
  size_t expansions = 0;
  while (!frontier.empty() && frontier.size() < kSplitTarget &&
         expansions < 8 * kSplitTarget && !splitter.stopped()) {
    PathItem item = std::move(frontier.front());
    frontier.pop_front();
    ++expansions;
    const Engine::Expansion ex = splitter.ExpandPath(item.path);
    if (ex.resolved) continue;  // incumbent / pruned bound recorded
    PathItem in{item.path, ex.node_ub};
    in.path.push_back(Decision{ex.branch_k, true});
    PathItem out{std::move(item.path), ex.node_ub};
    out.path.push_back(Decision{ex.branch_k, false});
    frontier.push_back(std::move(in));
    frontier.push_back(std::move(out));
  }

  double abandoned_lb_min = std::numeric_limits<double>::infinity();
  if (splitter.stopped()) {
    // Deadline or node limit hit while splitting: the unexplored
    // subproblems are abandoned; account their inherited bounds like the
    // serial engine accounts abandoned exclude-branches.
    for (const PathItem& item : frontier) {
      abandoned_lb_min =
          std::min(abandoned_lb_min, problem.TotalBaseCost() - item.ub);
    }
    frontier.clear();
  }

  // Phase 2 — solve the subproblems on a work-stealing pool. Jobs are
  // launched in DFS order (include-dives first, like the serial engine)
  // and each starts from the splitter's deterministic incumbent; the
  // shared best only tightens pruning.
  std::vector<PathItem> jobs(std::make_move_iterator(frontier.begin()),
                             std::make_move_iterator(frontier.end()));
  std::sort(jobs.begin(), jobs.end(), [](const PathItem& a,
                                         const PathItem& b) {
    return DfsBefore(a.path, b.path);
  });
  struct JobOutcome {
    double benefit = 0.0;
    std::vector<uint32_t> selection;
    bool improved = false;
    uint64_t nodes = 0;
    uint64_t bound_cutoffs = 0;
    uint64_t incumbent_updates = 0;
    double pruned_lb_min = std::numeric_limits<double>::infinity();
    double seconds_to_best = 0.0;
    bool stopped = false;
    bool timed_out = false;
  };
  std::vector<JobOutcome> outcomes(jobs.size());
  if (!jobs.empty()) {
    exec::ThreadPool pool(threads);
    pool.ParallelFor(
        jobs.size(),
        [&](size_t i) {
          Engine job(problem, opts, &shared, &watch);
          job.SeedIncumbent(splitter.incumbent(),
                            splitter.incumbent_benefit());
          job.RunSubtree(jobs[i].path);
          JobOutcome& out = outcomes[i];
          out.benefit = job.incumbent_benefit();
          out.improved =
              job.incumbent_benefit() > splitter.incumbent_benefit() + kEps;
          if (out.improved) out.selection = job.incumbent();
          out.nodes = job.nodes();
          out.bound_cutoffs = job.bound_cutoffs();
          out.incumbent_updates = job.incumbent_updates();
          out.pruned_lb_min = job.pruned_lb_min();
          out.seconds_to_best = job.seconds_to_best();
          out.stopped = job.stopped();
          out.timed_out = job.timed_out();
        },
        /*grain=*/1);
  }

  // Phase 3 — deterministic reduction, mirroring the serial incumbent
  // rule (strictly-eps-better replaces) over subtrees in DFS order.
  double best_benefit = splitter.incumbent_benefit();
  std::vector<uint32_t> best_selection = splitter.incumbent();
  double seconds_to_best = splitter.seconds_to_best();
  for (const JobOutcome& out : outcomes) {
    if (out.improved && out.benefit > best_benefit + kEps) {
      best_benefit = out.benefit;
      best_selection = out.selection;
      seconds_to_best = out.seconds_to_best;
    }
  }

  SolveResult result;
  result.nodes = splitter.nodes();
  result.bound_cutoffs = splitter.bound_cutoffs();
  result.incumbent_updates = splitter.incumbent_updates();
  double pruned_lb_min = std::min(splitter.pruned_lb_min(), abandoned_lb_min);
  bool stopped = splitter.stopped();
  bool timed_out = splitter.timed_out();
  for (const JobOutcome& out : outcomes) {
    result.nodes += out.nodes;
    result.bound_cutoffs += out.bound_cutoffs;
    result.incumbent_updates += out.incumbent_updates;
    pruned_lb_min = std::min(pruned_lb_min, out.pruned_lb_min);
    stopped = stopped || out.stopped;
    timed_out = timed_out || out.timed_out;
  }
  result.seconds_to_best = seconds_to_best;
  result.wall_seconds = watch.ElapsedSeconds();
  result.objective = problem.TotalBaseCost() - best_benefit;
  result.selected = std::move(best_selection);
  result.best_bound = std::min(result.objective, pruned_lb_min);
  result.gap = Engine::Gap(result.objective, result.best_bound);
  result.proven_optimal = !stopped && result.gap <= opts.mip_gap + kEps;
  if (stopped) {
    result.status = timed_out
                        ? Status::Timeout("time limit reached")
                        : Status::ResourceLimit("node limit reached");
  } else {
    result.status = Status::Ok();
  }
#if defined(IDXSEL_OBS)
  Engine::PublishObs(result);
  obs::Registry::Default()
      .GetCounter("idxsel.mip.parallel_jobs")
      ->Add(jobs.size());
  if (obs::Enabled()) {
    solve_span.SetArg("nodes", static_cast<double>(result.nodes));
    solve_span.SetArg("jobs", static_cast<double>(jobs.size()));
  }
#endif
  return result;
}

}  // namespace

std::vector<uint32_t> GreedyByDensity(const Problem& problem) {
  // CELF lazy greedy: cached marginals only shrink as the selection grows,
  // so a stale queue entry is an upper bound and can be re-evaluated on pop.
  struct Entry {
    double density;
    uint32_t k;
    uint64_t stamp;
    bool operator<(const Entry& other) const {
      if (density != other.density) return density < other.density;
      return k > other.k;
    }
  };
  std::vector<double> cur_cost = problem.base_cost;
  auto marginal = [&](uint32_t k) {
    double mu = -problem.penalty(k);
    for (const QueryCost& qc : problem.candidate_costs[k]) {
      const double gain = cur_cost[qc.query] - qc.cost;
      if (gain > 0.0) mu += problem.query_weight[qc.query] * gain;
    }
    return mu;
  };

  std::priority_queue<Entry> queue;
  for (uint32_t k = 0; k < problem.num_candidates(); ++k) {
    if (problem.candidate_memory[k] > problem.budget + kEps) continue;
    const double mu = marginal(k);
    if (mu <= kEps) continue;
    queue.push(Entry{mu / std::max(kEps, problem.candidate_memory[k]), k, 0});
  }

  std::vector<uint32_t> selection;
  double used = 0.0;
  uint64_t stamp = 0;
  while (!queue.empty()) {
    Entry top = queue.top();
    queue.pop();
    if (used + problem.candidate_memory[top.k] > problem.budget + kEps) {
      continue;  // no longer affordable; drop
    }
    if (top.stamp != stamp) {
      const double mu = marginal(top.k);
      if (mu <= kEps) continue;
      queue.push(
          Entry{mu / std::max(kEps, problem.candidate_memory[top.k]), top.k,
                stamp});
      continue;
    }
    // Fresh top entry: take it.
    for (const QueryCost& qc : problem.candidate_costs[top.k]) {
      if (qc.cost < cur_cost[qc.query]) cur_cost[qc.query] = qc.cost;
    }
    used += problem.candidate_memory[top.k];
    selection.push_back(top.k);
    ++stamp;
  }
  std::sort(selection.begin(), selection.end());
  return selection;
}

SolveResult Solve(const Problem& problem, const SolveOptions& options) {
  const size_t threads = exec::ResolveThreads(options.threads);
  SolveResult result;
  if (threads <= 1 || problem.num_candidates() == 0) {
    Engine engine(problem, options);
    result = engine.Run();
  } else {
    result = SolveParallel(problem, options, threads);
  }
  // Decision provenance for the solver layer, emitted through the
  // telemetry bridge (the mip layer must not see obs). Only the
  // thread-count-independent end-state goes in: node/cutoff counts,
  // bounds, and the gap vary run-to-run under shared-incumbent pruning.
  if (telemetry::JournalActive()) {
    telemetry::JournalEvent event;
    event.strategy = "mip";
    event.action = "solve";
    event.round = 1;
    event.objective_after = result.objective;
    const std::string note =
        std::string(result.status.ok()
                        ? (result.proven_optimal ? "optimal" : "gap-target")
                        : "limit") +
        " selected=" + std::to_string(result.selected.size());
    event.note = note.c_str();
    telemetry::EmitJournal(event);
  }
  return result;
}

}  // namespace idxsel::mip
