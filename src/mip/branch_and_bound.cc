#include "mip/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/stopwatch.h"
#include "obs/obs.h"

namespace idxsel::mip {
namespace {

constexpr double kEps = 1e-9;

/// Depth-first branch-and-bound engine; see header for the method.
class Engine {
 public:
  Engine(const Problem& problem, const SolveOptions& options)
      : p_(problem),
        opts_(options),
        state_(problem.num_candidates(), kFree),
        cur_cost_(problem.base_cost) {}

  SolveResult Run() {
    IDXSEL_OBS_SPAN(solve_span, "mip", "mip.solve");
    // Root incumbent from lazy density greedy.
    const std::vector<uint32_t> greedy = GreedyByDensity(p_);
    double greedy_benefit = 0.0;
    {
      std::vector<std::pair<uint32_t, double>> undo;
      for (uint32_t k : greedy) greedy_benefit += Apply(k, &undo);
      RecordGreedyIncumbent(greedy, greedy_benefit);
      for (uint32_t k : greedy) used_memory_ -= p_.candidate_memory[k];
      Revert(undo);
    }

    Dfs(0.0);

    SolveResult result;
    result.nodes = nodes_;
    result.bound_cutoffs = bound_cutoffs_;
    result.incumbent_updates = incumbent_updates_;
    result.seconds_to_best = seconds_to_best_;
    result.wall_seconds = watch_.ElapsedSeconds();
    result.objective = p_.TotalBaseCost() - incumbent_benefit_;
    result.selected = incumbent_;
    // Proven bound: explored subtrees are exact; pruned/abandoned ones
    // contribute their recorded cost lower bounds.
    result.best_bound = std::min(result.objective, pruned_lb_min_);
    result.gap = Gap(result.objective, result.best_bound);
    result.proven_optimal = !stopped_ && result.gap <= opts_.mip_gap + kEps;
    if (stopped_) {
      result.status = timeout_ ? Status::Timeout("time limit reached")
                               : Status::ResourceLimit("node limit reached");
    } else {
      result.status = Status::Ok();
    }
#if defined(IDXSEL_OBS)
    obs::Registry& registry = obs::Registry::Default();
    registry.GetCounter("idxsel.mip.solves")->Add(1);
    registry.GetCounter("idxsel.mip.nodes")->Add(nodes_);
    registry.GetCounter("idxsel.mip.bound_cutoffs")->Add(bound_cutoffs_);
    registry.GetCounter("idxsel.mip.incumbent_updates")
        ->Add(incumbent_updates_);
    registry.GetGauge("idxsel.mip.last_time_to_incumbent_ns")
        ->Set(static_cast<int64_t>(seconds_to_best_ * 1e9));
    if (obs::Enabled()) {
      registry.GetHistogram("idxsel.mip.solve_latency_ns")
          ->Record(static_cast<uint64_t>(result.wall_seconds * 1e9));
      solve_span.SetArg("nodes", static_cast<double>(nodes_));
    }
#endif
    return result;
  }

 private:
  enum CandidateState : char { kFree = 0, kIn = 1, kOut = 2 };

  static double Gap(double objective, double bound) {
    const double denom = std::max(std::abs(objective), 1e-10);
    return std::max(0.0, objective - bound) / denom;
  }

  /// Exact *net* marginal benefit of k against the current cur_cost_
  /// state: read gains minus k's modular selection penalty.
  double Marginal(uint32_t k) const {
    double mu = -p_.penalty(k);
    for (const QueryCost& qc : p_.candidate_costs[k]) {
      const double gain = cur_cost_[qc.query] - qc.cost;
      if (gain > 0.0) mu += p_.query_weight[qc.query] * gain;
    }
    return mu;
  }

  /// Commits k: updates per-query costs (with undo log) and the running
  /// memory total; returns the exact net marginal benefit realized.
  double Apply(uint32_t k, std::vector<std::pair<uint32_t, double>>* undo) {
    double mu = -p_.penalty(k);
    for (const QueryCost& qc : p_.candidate_costs[k]) {
      const double gain = cur_cost_[qc.query] - qc.cost;
      if (gain > 0.0) {
        mu += p_.query_weight[qc.query] * gain;
        undo->emplace_back(qc.query, cur_cost_[qc.query]);
        cur_cost_[qc.query] = qc.cost;
      }
    }
    used_memory_ += p_.candidate_memory[k];
    return mu;
  }

  void Revert(const std::vector<std::pair<uint32_t, double>>& undo) {
    // Replay in reverse so overlapping updates restore correctly.
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      cur_cost_[it->first] = it->second;
    }
  }

  void RecordIncumbent(double benefit) {
    if (benefit > incumbent_benefit_ + kEps) {
      incumbent_benefit_ = benefit;
      incumbent_.clear();
      for (uint32_t k = 0; k < state_.size(); ++k) {
        if (state_[k] == kIn) incumbent_.push_back(k);
      }
      NoteIncumbentImproved();
    }
  }

  /// Records an incumbent coming from the root greedy (selection passed in
  /// `GreedyByDensity` order rather than via state_).
  void RecordGreedyIncumbent(const std::vector<uint32_t>& selection,
                             double benefit) {
    if (benefit > incumbent_benefit_ + kEps) {
      incumbent_benefit_ = benefit;
      incumbent_ = selection;
      NoteIncumbentImproved();
    }
  }

  /// Telemetry on strict incumbent improvements: count them and remember
  /// when the (eventually final) incumbent was reached — the
  /// time-to-incumbent the paper's DNF discussion cares about.
  void NoteIncumbentImproved() {
    ++incumbent_updates_;
    seconds_to_best_ = watch_.ElapsedSeconds();
  }

  bool Deadline() {
    if (stopped_) return true;
    if (nodes_ >= opts_.max_nodes) {
      stopped_ = true;
      timeout_ = false;
      return true;
    }
    if ((nodes_ & 0x3f) == 0 &&
        (watch_.ElapsedSeconds() > opts_.time_limit_seconds ||
         opts_.deadline.expired())) {
      stopped_ = true;
      timeout_ = true;
      return true;
    }
    return false;
  }

  void RecordPrunedBound(double node_benefit_ub) {
    const double lb = p_.TotalBaseCost() - node_benefit_ub;
    pruned_lb_min_ = std::min(pruned_lb_min_, lb);
  }

  void Dfs(double current_benefit) {
    ++nodes_;

    // Two complementary upper bounds on the additional benefit:
    //  * fractional knapsack over marginal values (budget-aware, but
    //    overcounts when candidates cannibalize each other), and
    //  * per-query potential: no query can improve past the cheapest cost
    //    any affordable free candidate offers it (overlap-aware, but
    //    budget-blind).
    // The node bound is the minimum of the two.
    struct Item {
      double mu;
      double density;
      uint32_t k;
    };
    std::vector<Item> items;
    const double remaining = p_.budget - used_memory_;
    query_floor_ = cur_cost_;
    for (uint32_t k = 0; k < state_.size(); ++k) {
      if (state_[k] != kFree) continue;
      if (p_.candidate_memory[k] > remaining + kEps) continue;
      const double mu = Marginal(k);
      if (mu <= kEps) continue;
      for (const QueryCost& qc : p_.candidate_costs[k]) {
        if (qc.cost < query_floor_[qc.query]) {
          query_floor_[qc.query] = qc.cost;
        }
      }
      items.push_back(Item{mu, mu / std::max(kEps, p_.candidate_memory[k]), k});
    }

    if (items.empty()) {
      RecordIncumbent(current_benefit);
      return;
    }

    // Monotonicity shortcut: without selection penalties, benefits only
    // grow with the selection, so if every remaining beneficial candidate
    // fits the leftover budget simultaneously, taking all of them is the
    // exact subtree optimum — no branching needed. (This also makes the
    // budget-unconstrained case, where the knapsack bound is weakest, O(1)
    // nodes.) With penalties the objective is no longer monotone and the
    // shortcut is disabled.
    double items_weight = 0.0;
    for (const Item& item : items) {
      items_weight += p_.candidate_memory[item.k];
    }
    if (!p_.has_penalties() && items_weight <= remaining + kEps) {
      std::vector<std::pair<uint32_t, double>> undo;
      double benefit = current_benefit;
      for (const Item& item : items) {
        state_[item.k] = kIn;
        benefit += Apply(item.k, &undo);
      }
      RecordIncumbent(benefit);
      for (const Item& item : items) {
        state_[item.k] = kFree;
        used_memory_ -= p_.candidate_memory[item.k];
      }
      Revert(undo);
      return;
    }

    std::sort(items.begin(), items.end(), [](const Item& x, const Item& y) {
      if (x.density != y.density) return x.density > y.density;
      return x.k < y.k;
    });
    double fill = remaining;
    double knapsack = 0.0;
    uint32_t branch_k = items.front().k;
    bool found_critical = false;
    for (const Item& item : items) {
      const double w = p_.candidate_memory[item.k];
      if (w <= fill) {
        knapsack += item.mu;
        fill -= w;
      } else {
        knapsack += item.mu * (fill / w);
        branch_k = item.k;  // critical item
        found_critical = true;
        break;
      }
    }
    (void)found_critical;

    double query_potential = 0.0;
    for (size_t j = 0; j < cur_cost_.size(); ++j) {
      query_potential += p_.query_weight[j] * (cur_cost_[j] - query_floor_[j]);
    }

    const double node_ub =
        current_benefit + std::min(knapsack, query_potential);
    const double incumbent_cost = p_.TotalBaseCost() - incumbent_benefit_;
    const double gap_abs = opts_.mip_gap * std::max(std::abs(incumbent_cost), 1e-10);
    const double node_lb_cost = p_.TotalBaseCost() - node_ub;
    if (node_lb_cost >= incumbent_cost - gap_abs - kEps) {
      ++bound_cutoffs_;
      RecordPrunedBound(node_ub);
      return;
    }
    if (Deadline()) {
      RecordPrunedBound(node_ub);
      return;
    }

    // Include branch first (greedy-like dive).
    {
      state_[branch_k] = kIn;
      std::vector<std::pair<uint32_t, double>> undo;
      const double mu = Apply(branch_k, &undo);
      Dfs(current_benefit + mu);
      used_memory_ -= p_.candidate_memory[branch_k];
      Revert(undo);
      state_[branch_k] = kFree;
    }
    if (stopped_) {
      // The exclude branch is abandoned; its optimum is covered by node_ub.
      RecordPrunedBound(node_ub);
      return;
    }
    {
      state_[branch_k] = kOut;
      Dfs(current_benefit);
      state_[branch_k] = kFree;
    }
  }

  const Problem& p_;
  SolveOptions opts_;
  Stopwatch watch_;

  std::vector<char> state_;
  std::vector<double> cur_cost_;
  double used_memory_ = 0.0;

  double incumbent_benefit_ = 0.0;
  std::vector<uint32_t> incumbent_;

  std::vector<double> query_floor_;  // per-node scratch for the query bound
  double pruned_lb_min_ = std::numeric_limits<double>::infinity();
  uint64_t nodes_ = 0;
  uint64_t bound_cutoffs_ = 0;
  uint64_t incumbent_updates_ = 0;
  double seconds_to_best_ = 0.0;
  bool stopped_ = false;
  bool timeout_ = false;
};

}  // namespace

std::vector<uint32_t> GreedyByDensity(const Problem& problem) {
  // CELF lazy greedy: cached marginals only shrink as the selection grows,
  // so a stale queue entry is an upper bound and can be re-evaluated on pop.
  struct Entry {
    double density;
    uint32_t k;
    uint64_t stamp;
    bool operator<(const Entry& other) const {
      if (density != other.density) return density < other.density;
      return k > other.k;
    }
  };
  std::vector<double> cur_cost = problem.base_cost;
  auto marginal = [&](uint32_t k) {
    double mu = -problem.penalty(k);
    for (const QueryCost& qc : problem.candidate_costs[k]) {
      const double gain = cur_cost[qc.query] - qc.cost;
      if (gain > 0.0) mu += problem.query_weight[qc.query] * gain;
    }
    return mu;
  };

  std::priority_queue<Entry> queue;
  for (uint32_t k = 0; k < problem.num_candidates(); ++k) {
    if (problem.candidate_memory[k] > problem.budget + kEps) continue;
    const double mu = marginal(k);
    if (mu <= kEps) continue;
    queue.push(Entry{mu / std::max(kEps, problem.candidate_memory[k]), k, 0});
  }

  std::vector<uint32_t> selection;
  double used = 0.0;
  uint64_t stamp = 0;
  while (!queue.empty()) {
    Entry top = queue.top();
    queue.pop();
    if (used + problem.candidate_memory[top.k] > problem.budget + kEps) {
      continue;  // no longer affordable; drop
    }
    if (top.stamp != stamp) {
      const double mu = marginal(top.k);
      if (mu <= kEps) continue;
      queue.push(
          Entry{mu / std::max(kEps, problem.candidate_memory[top.k]), top.k,
                stamp});
      continue;
    }
    // Fresh top entry: take it.
    for (const QueryCost& qc : problem.candidate_costs[top.k]) {
      if (qc.cost < cur_cost[qc.query]) cur_cost[qc.query] = qc.cost;
    }
    used += problem.candidate_memory[top.k];
    selection.push_back(top.k);
    ++stamp;
  }
  std::sort(selection.begin(), selection.end());
  return selection;
}

SolveResult Solve(const Problem& problem, const SolveOptions& options) {
  Engine engine(problem, options);
  return engine.Run();
}

}  // namespace idxsel::mip
