// The index-selection binary program in solver-ready form.
//
// CoPhy's BIP (eqs. 5-8) has a special structure: once the index-selection
// variables x are fixed, the assignment variables z are trivially optimal
// (every query takes its cheapest selected applicable index, or none).
// The solver therefore works directly on
//
//   minimize   sum_j b_j * min( f_j(0), min_{k selected, k in I_j} f_j(k) )
//   subject to sum_{k selected} p_k <= A,     selection subset of candidates
//
// which is equivalent to the full LP formulation but has |I| binary
// variables instead of |I| + sum_j |I_j|.

#ifndef IDXSEL_MIP_PROBLEM_H_
#define IDXSEL_MIP_PROBLEM_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace idxsel::mip {

/// One (query, cost) entry of a candidate's benefit list.
struct QueryCost {
  uint32_t query = 0;
  double cost = 0.0;  ///< f_j(k), guaranteed < f_j(0) after Canonicalize().
};

/// Solver input. Build directly or via cophy::BuildProblem.
struct Problem {
  std::vector<double> query_weight;  ///< b_j, length Q.
  std::vector<double> base_cost;     ///< f_j(0), length Q.
  /// candidate_costs[k]: the queries candidate k is applicable and
  /// beneficial to, with their costs f_j(k).
  std::vector<std::vector<QueryCost>> candidate_costs;
  std::vector<double> candidate_memory;  ///< p_k, aligned with the above.
  /// Modular selection penalty per candidate (write/maintenance costs paid
  /// whenever the candidate is selected); empty = all zero.
  std::vector<double> candidate_penalty;
  double budget = 0.0;                   ///< A.

  size_t num_queries() const { return query_weight.size(); }
  size_t num_candidates() const { return candidate_costs.size(); }

  /// Penalty of candidate k (0 when candidate_penalty is empty).
  double penalty(size_t k) const {
    return candidate_penalty.empty() ? 0.0 : candidate_penalty[k];
  }
  bool has_penalties() const { return !candidate_penalty.empty(); }

  /// Total weighted cost with no index at all: sum_j b_j f_j(0). This is
  /// the objective's upper anchor; benefits are measured against it.
  double TotalBaseCost() const {
    double total = 0.0;
    for (size_t j = 0; j < query_weight.size(); ++j) {
      total += query_weight[j] * base_cost[j];
    }
    return total;
  }

  /// Drops useless entries (f_j(k) >= f_j(0)) and candidates that are
  /// non-beneficial or over budget on their own; returns the mapping from
  /// new candidate position to original position.
  std::vector<uint32_t> Canonicalize();
};

}  // namespace idxsel::mip

#endif  // IDXSEL_MIP_PROBLEM_H_
