// Budget sweeps and performance/memory frontier assembly.
//
// All the paper's figures plot "workload cost" (or runtime) against the
// relative memory budget w, where A(w) = w * sum_i p_{{i}} (eq. 10). This
// module runs a selection strategy across a grid of w values and collects
// the (w, memory, cost) series, plus helpers to express costs relative to
// the unindexed baseline.

#ifndef IDXSEL_FRONTIER_FRONTIER_H_
#define IDXSEL_FRONTIER_FRONTIER_H_

#include <functional>
#include <string>
#include <vector>

#include "costmodel/index.h"
#include "costmodel/what_if.h"

namespace idxsel::frontier {

using costmodel::IndexConfig;
using costmodel::WhatIfEngine;

/// One sweep point.
struct FrontierPoint {
  double w = 0.0;       ///< Relative budget.
  double budget = 0.0;  ///< A(w) in bytes.
  double memory = 0.0;  ///< Memory actually used.
  double cost = 0.0;    ///< F(selection).
  size_t num_indexes = 0;
  bool dnf = false;     ///< Strategy did not finish at this point.
};

/// A labelled frontier curve.
struct FrontierSeries {
  std::string label;
  std::vector<FrontierPoint> points;
};

/// A strategy under sweep: given the absolute budget, produce a selection.
/// Return `dnf = true` (with a best-effort selection) on timeout.
struct StrategyOutcome {
  IndexConfig selection;
  bool dnf = false;
};
using Strategy = std::function<StrategyOutcome(double budget)>;

/// Evenly spaced w grid in [w_lo, w_hi] with `steps` points (inclusive).
std::vector<double> BudgetGrid(double w_lo, double w_hi, size_t steps);

/// Runs `strategy` at every w in `grid`; costs/memory are evaluated through
/// `engine` (one-index-per-query workload cost).
FrontierSeries SweepStrategy(WhatIfEngine& engine,
                             double total_single_attr_memory,
                             const std::vector<double>& grid,
                             const std::string& label,
                             const Strategy& strategy);

/// Normalizes a series' costs by the unindexed workload cost F(empty),
/// giving the "relative workload cost" axis used in the figures.
void NormalizeCosts(WhatIfEngine& engine, FrontierSeries* series);

/// Renders one or more series as an aligned console table
/// (rows = w grid, columns = series). DNF points print their incumbent
/// cost with a trailing '*'.
std::string RenderSeriesTable(const std::vector<FrontierSeries>& series);

/// Writes the series to CSV: w, budget, then one cost column per series.
Status WriteSeriesCsv(const std::vector<FrontierSeries>& series,
                      const std::string& path);

}  // namespace idxsel::frontier

#endif  // IDXSEL_FRONTIER_FRONTIER_H_
