#include "frontier/frontier.h"

#include <algorithm>

#include "common/check.h"
#include "common/csv.h"
#include "common/format.h"

namespace idxsel::frontier {

std::vector<double> BudgetGrid(double w_lo, double w_hi, size_t steps) {
  IDXSEL_CHECK_GE(steps, 2u);
  IDXSEL_CHECK_LE(w_lo, w_hi);
  std::vector<double> grid(steps);
  for (size_t s = 0; s < steps; ++s) {
    grid[s] = w_lo + (w_hi - w_lo) * static_cast<double>(s) /
                         static_cast<double>(steps - 1);
  }
  return grid;
}

FrontierSeries SweepStrategy(WhatIfEngine& engine,
                             double total_single_attr_memory,
                             const std::vector<double>& grid,
                             const std::string& label,
                             const Strategy& strategy) {
  FrontierSeries series;
  series.label = label;
  series.points.reserve(grid.size());
  // Figures and the CSV/table renderers assume the sweep runs ascending;
  // an unsorted grid would silently plot a self-crossing "frontier".
  IDXSEL_DCHECK(std::is_sorted(grid.begin(), grid.end()));
  for (double w : grid) {
    FrontierPoint point;
    point.w = w;
    point.budget = w * total_single_attr_memory;
    StrategyOutcome outcome = strategy(point.budget);
    point.dnf = outcome.dnf;
    point.memory = engine.ConfigMemory(outcome.selection);
    point.cost = engine.WorkloadCost(outcome.selection);
    point.num_indexes = outcome.selection.size();
    series.points.push_back(std::move(point));
  }
  return series;
}

void NormalizeCosts(WhatIfEngine& engine, FrontierSeries* series) {
  const double base = engine.WorkloadCost(IndexConfig{});
  IDXSEL_CHECK_GT(base, 0.0);
  for (FrontierPoint& point : series->points) point.cost /= base;
}

std::string RenderSeriesTable(const std::vector<FrontierSeries>& series) {
  IDXSEL_CHECK(!series.empty());
  std::vector<std::string> header = {"w"};
  header.reserve(1 + series.size());
  for (const FrontierSeries& s : series) header.push_back(s.label);
  TablePrinter table(std::move(header));
  const size_t rows = series.front().points.size();
  for (const FrontierSeries& s : series) {
    IDXSEL_CHECK_EQ(s.points.size(), rows);
  }
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row = {
        FormatDouble(series.front().points[r].w, 3)};
    row.reserve(1 + series.size());
    for (const FrontierSeries& s : series) {
      const FrontierPoint& p = s.points[r];
      // A DNF point still carries the solver's incumbent; print it with a
      // marker (the paper would simply report DNF after its 8-hour cutoff).
      row.push_back(p.dnf ? FormatDouble(p.cost, 4) + "*"
                          : FormatDouble(p.cost, 4));
    }
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

Status WriteSeriesCsv(const std::vector<FrontierSeries>& series,
                      const std::string& path) {
  IDXSEL_CHECK(!series.empty());
  std::vector<std::string> header = {"w", "budget_bytes"};
  header.reserve(2 + 2 * series.size());
  for (const FrontierSeries& s : series) {
    header.push_back(s.label + "_cost");
    header.push_back(s.label + "_memory");
  }
  CsvWriter csv(std::move(header));
  const size_t rows = series.front().points.size();
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row = {
        FormatDouble(series.front().points[r].w, 6),
        FormatDouble(series.front().points[r].budget, 2)};
    row.reserve(2 + 2 * series.size());
    for (const FrontierSeries& s : series) {
      row.push_back(FormatDouble(s.points[r].cost, 6));
      row.push_back(FormatDouble(s.points[r].memory, 2));
    }
    csv.AddRow(std::move(row));
  }
  return csv.WriteFile(path);
}

}  // namespace idxsel::frontier
