#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define IDXSEL_SERVE_HAVE_FSYNC 1
#endif

#include "common/check.h"
#include "common/mutex.h"
#include "common/telemetry.h"
#include "common/thread_annotations.h"
#include "workload/parser.h"

namespace idxsel::serve {
namespace {

using telemetry::Add;
using telemetry::Slot;

constexpr const char* kCheckpointFile = "checkpoint.idxsel";
constexpr const char* kDeltaLogFile = "deltas.log";
constexpr const char* kEpochLogFile = "epochs.jsonl";

/// Watchdog for one selection attempt: fires the cancellation token when
/// the round outlives its budget. Tick-free rounds (infinite budget)
/// never construct one.
class Watchdog {
 public:
  Watchdog(double seconds, rt::CancellationToken* token) {
    thread_ = std::thread([this, seconds, token] { Run(seconds, token); });
  }

  /// Stops the timer; returns true iff it already fired.
  bool Disarm() {
    {
      common::MutexLock lock(&mu_);
      disarmed_ = true;
    }
    cv_.NotifyAll();
    thread_.join();
    common::MutexLock lock(&mu_);  // join ordered the write; lock for TSA
    return fired_;
  }

 private:
  /// Timer-thread body: sleeps out the budget against a fixed deadline,
  /// re-checking disarmed_ across wakeups, and fires the token exactly
  /// when the deadline passes while still armed. steady_clock (monotonic,
  /// the clock cv waits use anyway) — never wall time.
  void Run(double seconds, rt::CancellationToken* token) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    common::MutexLock lock(&mu_);
    while (!disarmed_) {
      if (!cv_.WaitUntil(mu_, deadline) && !disarmed_) {
        fired_ = true;
        token->RequestCancel();
        return;
      }
    }
  }

  common::Mutex mu_;
  common::CondVar cv_;
  bool disarmed_ IDXSEL_GUARDED_BY(mu_) = false;
  bool fired_ IDXSEL_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

std::string JoinPath(const std::string& dir, const char* file) {
  if (dir.empty()) return {};
  return dir.back() == '/' ? dir + file : dir + "/" + file;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::NotFound("cannot open " + path);
  std::string body;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    body.append(buf, got);
  }
  std::fclose(file);
  return body;
}

}  // namespace

const char* ServiceStateName(ServiceState state) {
  switch (state) {
    case ServiceState::kIdle:
      return "idle";
    case ServiceState::kDegraded:
      return "degraded";
    case ServiceState::kStopped:
      return "stopped";
  }
  return "unknown";
}

/// Backend over the analytic model that owns its CostModel (the factory's
/// returned backends must be self-contained).
class OwningModelBackend : public costmodel::WhatIfBackend {
 public:
  OwningModelBackend(const workload::Workload& w,
                     const costmodel::CostModelParams& params)
      : model_(&w, params), inner_(&model_) {}

  double BaseCost(costmodel::QueryId j) const override {
    return inner_.BaseCost(j);
  }
  double CostWithIndex(costmodel::QueryId j,
                       const costmodel::Index& k) const override {
    return inner_.CostWithIndex(j, k);
  }
  double CostWithConfig(costmodel::QueryId j,
                        const costmodel::IndexConfig& config) const override {
    return inner_.CostWithConfig(j, config);
  }
  double IndexMemory(const costmodel::Index& k) const override {
    return inner_.IndexMemory(k);
  }
  double MaintenanceCost(costmodel::QueryId j,
                         const costmodel::Index& k) const override {
    return inner_.MaintenanceCost(j, k);
  }

 private:
  costmodel::CostModel model_;
  costmodel::ModelBackend inner_;
};

BackendFactory MakeModelBackendFactory(costmodel::CostModelParams params) {
  return [params](const workload::Workload& w)
             -> std::unique_ptr<costmodel::WhatIfBackend> {
    return std::make_unique<OwningModelBackend>(w, params);
  };
}

AdvisorService::AdvisorService(const workload::NamedWorkload& base,
                               BackendFactory factory,
                               const ServiceOptions& options)
    : base_(base.workload),
      names_(base.attribute_names),
      factory_(std::move(factory)),
      options_(options),
      budget_fraction_(options.advisor.budget_fraction),
      budget_bytes_(options.advisor.budget_bytes),
      queue_(options.queue_capacity),
      backoff_(options.backoff),
      breaker_(options.breaker) {}

Result<std::unique_ptr<AdvisorService>> AdvisorService::Start(
    const workload::NamedWorkload& base, BackendFactory factory,
    const ServiceOptions& options) {
  IDXSEL_CHECK(factory != nullptr);
  if (base.workload.num_queries() == 0) {
    return Status::InvalidArgument("serve: base workload has no queries");
  }
  if (base.attribute_names.size() != base.workload.num_attributes()) {
    return Status::InvalidArgument("serve: attribute names missing");
  }
  std::unique_ptr<AdvisorService> service(
      new AdvisorService(base, std::move(factory), options));
  if (!options.dir.empty()) {
    const Status recovered = service->TryRecover();
    if (!recovered.ok()) {
      // Cold start: missing checkpoint is the normal first boot; a
      // rejected (corrupt / truncated / version-skewed) one is discarded
      // wholesale — never partially loaded. Either way the delta log is
      // replayed from the top (a crash before the first commit leaves
      // journaled deltas but no checkpoint) and any journal lines from a
      // discarded history are truncated.
      service->ColdStart();
      ++service->stats_.cold_starts;
      Add(Slot::kServeColdStarts);
      service->ReconcileEpochJournal(0);
      const Status replay = service->ReplayDeltaLog(0);
      if (!replay.ok()) return replay;
    } else {
      ++service->stats_.recoveries;
      Add(Slot::kServeRecoveries);
    }
    const Status log = service->OpenDeltaLog();
    if (!log.ok()) return log;
  } else {
    service->ColdStart();
    ++service->stats_.cold_starts;
    Add(Slot::kServeColdStarts);
  }
  return service;
}

AdvisorService::~AdvisorService() {
  if (delta_log_ != nullptr) std::fclose(delta_log_);
}

void AdvisorService::Hook(const char* point) {
  if (options_.hooks.at) options_.hooks.at(point);
}

void AdvisorService::SleepFor(double seconds) {
  if (options_.hooks.sleep) {
    options_.hooks.sleep(seconds);
  } else {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

std::string AdvisorService::checkpoint_path() const {
  return JoinPath(options_.dir, kCheckpointFile);
}
std::string AdvisorService::delta_log_path() const {
  return JoinPath(options_.dir, kDeltaLogFile);
}
std::string AdvisorService::epoch_log_path() const {
  return JoinPath(options_.dir, kEpochLogFile);
}

// ---------------------------------------------------------------------------
// Boot: cold start & recovery.
// ---------------------------------------------------------------------------

void AdvisorService::ColdStart() {
  templates_.clear();
  for (const workload::Query& q : base_.queries()) {
    templates_.push_back(TemplateEntry{q.table, q.attributes, q.frequency,
                                       q.kind == workload::QueryKind::kWrite});
  }
  epoch_ = 0;
  cursor_ = 0;
  log_lines_ = 0;
  drift_ = 0.0;
  pending_structural_ = false;
  pending_budget_ = false;
  pending_shift_ = false;
  committed_rec_ = advisor::Recommendation{};
  committed_plan_ = DeploymentPlan{};
  committed_degraded_ = true;
  RebuildEngine();
  // Cold starts rebuild by definition; only count rebuilds caused by
  // structural deltas.
  stats_.engine_rebuilds = 0;
}

Status AdvisorService::TryRecover() {
  auto loaded = LoadCheckpoint(checkpoint_path());
  if (!loaded.ok()) return loaded.status();
  const Checkpoint& cp = loaded.value();

  // The checkpoint's workload block carries the *queries* (templates and
  // shifted frequencies); the schema — tables, attributes, their global
  // ids — always comes from the base workload, with the checkpoint's
  // attribute names mapped back onto base ids. This keeps recovered
  // selections (which reference base attribute ids) valid and makes the
  // rebuilt workload bit-identical to the crashed one.
  auto parsed = workload::ParseWorkload(cp.workload_text);
  if (!parsed.ok()) {
    return Status::InvalidArgument("checkpoint workload rejected: " +
                                   parsed.status().message());
  }
  std::vector<int64_t> to_base(parsed->workload.num_attributes(), -1);
  for (size_t a = 0; a < parsed->attribute_names.size(); ++a) {
    for (size_t b = 0; b < names_.size(); ++b) {
      if (names_[b] == parsed->attribute_names[a]) {
        to_base[a] = static_cast<int64_t>(b);
        break;
      }
    }
    if (to_base[a] < 0) {
      return Status::InvalidArgument(
          "checkpoint names unknown attribute '" + parsed->attribute_names[a] +
          "'");
    }
  }
  std::vector<TemplateEntry> templates;
  for (const workload::Query& q : parsed->workload.queries()) {
    TemplateEntry entry;
    entry.frequency = q.frequency;
    entry.write = q.kind == workload::QueryKind::kWrite;
    for (const workload::AttributeId a : q.attributes) {
      const auto base_id =
          static_cast<workload::AttributeId>(to_base[a]);
      entry.attrs.push_back(base_id);
      entry.table = base_.attribute(base_id).table;
    }
    std::sort(entry.attrs.begin(), entry.attrs.end());
    templates.push_back(std::move(entry));
  }

  templates_ = std::move(templates);
  epoch_ = cp.epoch;
  cursor_ = cp.cursor;
  drift_ = cp.drift;
  pending_structural_ = false;
  pending_budget_ = false;
  pending_shift_ = drift_ > 0.0;  // still counting toward the threshold
  budget_fraction_ = cp.budget_fraction;
  budget_bytes_ = cp.budget_bytes;
  RebuildEngine();
  stats_.engine_rebuilds = 0;

  // Rehydrate the served answer from the snapshot (the full advisor
  // Recommendation is not persisted; the fields that matter for serving
  // and for determinism are).
  committed_rec_ = advisor::Recommendation{};
  committed_rec_.selection = cp.selection;
  committed_rec_.budget = budget_bytes_;
  committed_rec_.memory = cp.memory;
  committed_rec_.cost_before = cp.cost_before;
  committed_rec_.cost_after = cp.cost_after;
  committed_plan_ = cp.plan;
  if (committed_plan_.budget > 0.0) {
    committed_rec_.budget = committed_plan_.budget;  // the round's budget
  }
  committed_degraded_ = cp.degraded;

  // Journal lines past the committed epoch are pre-crash appends whose
  // commit never landed; the re-run round will re-append them verbatim.
  ReconcileEpochJournal(epoch_);
  return ReplayDeltaLog(cursor_);
}

Status AdvisorService::ReplayDeltaLog(uint64_t from_line) {
  log_lines_ = 0;
  auto body = ReadWholeFile(delta_log_path());
  if (!body.ok()) return Status::Ok();  // no log yet: nothing to replay
  std::istringstream in(body.value());
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++line_no;
    if (line_no <= from_line) continue;
    auto delta = ParseDelta(line);
    if (!delta.ok()) {
      return Status::Internal("delta log line " + std::to_string(line_no) +
                              " rejected: " + delta.status().message());
    }
    // Accepted-at-submit deltas always re-fit: replay coalesces exactly
    // as the original submissions did, so the rebuilt queue is never
    // larger than the crashed one.
    const Admission admission = queue_.Push(delta.value());
    IDXSEL_CHECK(admission != Admission::kShed);
    ++stats_.replayed_deltas;
  }
  log_lines_ = line_no;
  return Status::Ok();
}

void AdvisorService::ReconcileEpochJournal(uint64_t max_epoch) {
  auto body = ReadWholeFile(epoch_log_path());
  if (!body.ok()) return;
  std::istringstream in(body.value());
  std::string line, kept;
  bool dropped = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    uint64_t epoch = 0;
    const size_t pos = line.find("\"epoch\":");
    if (pos != std::string::npos) {
      epoch = std::strtoull(line.c_str() + pos + 8, nullptr, 10);
    }
    if (pos == std::string::npos || epoch > max_epoch) {
      dropped = true;
      continue;
    }
    kept += line;
    kept += '\n';
  }
  if (!dropped) return;
  const std::string tmp = epoch_log_path() + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return;
  std::fwrite(kept.data(), 1, kept.size(), file);
  std::fflush(file);
#if defined(IDXSEL_SERVE_HAVE_FSYNC)
  ::fsync(::fileno(file));
#endif
  std::fclose(file);
  std::rename(tmp.c_str(), epoch_log_path().c_str());
}

Status AdvisorService::OpenDeltaLog() {
  delta_log_ = std::fopen(delta_log_path().c_str(), "ab");
  if (delta_log_ == nullptr) {
    return Status::Internal("serve: cannot open " + delta_log_path());
  }
  return Status::Ok();
}

Status AdvisorService::AppendDeltaLine(const std::string& line) {
  if (delta_log_ == nullptr) return Status::Ok();  // ephemeral mode
  bool ok = std::fwrite(line.data(), 1, line.size(), delta_log_) ==
                line.size() &&
            std::fputc('\n', delta_log_) != EOF &&
            std::fflush(delta_log_) == 0;
#if defined(IDXSEL_SERVE_HAVE_FSYNC)
  ok = ok && ::fsync(::fileno(delta_log_)) == 0;
#endif
  return ok ? Status::Ok()
            : Status::Internal("serve: delta log append failed");
}

Status AdvisorService::AppendEpochLine(const std::string& line) {
  if (options_.dir.empty()) return Status::Ok();
  std::FILE* file = std::fopen(epoch_log_path().c_str(), "ab");
  if (file == nullptr) {
    return Status::Internal("serve: cannot open " + epoch_log_path());
  }
  bool ok = std::fwrite(line.data(), 1, line.size(), file) == line.size() &&
            std::fflush(file) == 0;
#if defined(IDXSEL_SERVE_HAVE_FSYNC)
  ok = ok && ::fsync(::fileno(file)) == 0;
#endif
  ok = std::fclose(file) == 0 && ok;
  return ok ? Status::Ok()
            : Status::Internal("serve: epoch journal append failed");
}

// ---------------------------------------------------------------------------
// Workload state.
// ---------------------------------------------------------------------------

void AdvisorService::RebuildEngine() {
  auto rebuilt = std::make_unique<workload::Workload>();
  for (const workload::TableSchema& t : base_.tables()) {
    rebuilt->AddTable(t.name, t.row_count);
  }
  for (size_t a = 0; a < base_.num_attributes(); ++a) {
    const workload::AttributeStats& stats =
        base_.attribute(static_cast<workload::AttributeId>(a));
    rebuilt->AddAttribute(stats.table, stats.distinct_values,
                          stats.value_size);
  }
  for (const TemplateEntry& entry : templates_) {
    auto added = rebuilt->AddQuery(entry.table, entry.attrs, entry.frequency,
                                   entry.write ? workload::QueryKind::kWrite
                                               : workload::QueryKind::kRead);
    IDXSEL_CHECK(added.ok());
  }
  rebuilt->Finalize();
  // Teardown order matters: the shard session borrows the engine, the
  // engine borrows the backend, and the backend may borrow the workload
  // it was built for.
  shard_session_.reset();
  engine_.reset();
  backend_.reset();
  workload_ = std::move(rebuilt);
  backend_ = factory_(*workload_);
  IDXSEL_CHECK(backend_ != nullptr);
  engine_ = std::make_unique<costmodel::WhatIfEngine>(workload_.get(),
                                                      backend_.get());
  ++stats_.engine_rebuilds;
}

int64_t AdvisorService::FindTemplate(const WorkloadDelta& delta) const {
  for (size_t i = 0; i < templates_.size(); ++i) {
    if (templates_[i].table == delta.table &&
        templates_[i].attrs == delta.attributes) {
      return static_cast<int64_t>(i);
    }
  }
  return -1;
}

bool AdvisorService::ApplyDelta(const WorkloadDelta& delta,
                                bool* budget_changed) {
  switch (delta.kind) {
    case DeltaKind::kBudgetChange:
      if (delta.budget_fraction > 0.0) budget_fraction_ = delta.budget_fraction;
      budget_bytes_ = delta.budget_bytes;
      *budget_changed = true;
      return false;
    case DeltaKind::kFrequencyShift: {
      const int64_t idx = FindTemplate(delta);
      if (idx < 0) {
        ++stats_.deltas_skipped;
        return false;
      }
      TemplateEntry& entry = templates_[static_cast<size_t>(idx)];
      drift_ += std::abs(delta.frequency - entry.frequency);
      entry.frequency = delta.frequency;
      return false;
    }
    case DeltaKind::kAddTemplate: {
      const int64_t idx = FindTemplate(delta);
      if (idx >= 0) {
        // Re-adding an existing template is a frequency shift — this is
        // what makes delta-log replay idempotent across recoveries. A
        // changed read/write kind, however, alters maintenance structure
        // and is treated as structural (engine rebuild).
        TemplateEntry& entry = templates_[static_cast<size_t>(idx)];
        drift_ += std::abs(delta.frequency - entry.frequency);
        entry.frequency = delta.frequency;
        const bool kind_changed = entry.write != delta.write;
        entry.write = delta.write;
        return kind_changed;
      }
      templates_.push_back(TemplateEntry{delta.table, delta.attributes,
                                         delta.frequency, delta.write});
      drift_ += delta.frequency;
      return true;
    }
    case DeltaKind::kRemoveTemplate: {
      const int64_t idx = FindTemplate(delta);
      if (idx < 0) {
        ++stats_.deltas_skipped;
        return false;
      }
      drift_ += templates_[static_cast<size_t>(idx)].frequency;
      templates_.erase(templates_.begin() + idx);
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Ingestion.
// ---------------------------------------------------------------------------

Status AdvisorService::Submit(const WorkloadDelta& delta) {
  if (state_ == ServiceState::kStopped) {
    return Status::Internal("serve: Submit after Stop");
  }
  const Admission admission = queue_.Push(delta);
  switch (admission) {
    case Admission::kShed:
      ++stats_.deltas_shed;
      Add(Slot::kServeDeltasShed);
      shed_since_commit_ = true;
      return Status::ResourceLimit(
          "serve: delta queue full (" + std::to_string(queue_.capacity()) +
          "); serving last commitment");
    case Admission::kCoalesced:
      ++stats_.deltas_coalesced;
      Add(Slot::kServeDeltasCoalesced);
      break;
    case Admission::kAccepted:
      ++stats_.deltas_accepted;
      Add(Slot::kServeDeltasAccepted);
      break;
  }
  // Write-ahead: the line is durable before Submit returns, so a crash
  // at any later point replays it. Coalesced deltas are logged too —
  // replay re-coalesces them identically.
  const Status logged = AppendDeltaLine(FormatDelta(delta));
  if (!logged.ok()) return logged;
  ++log_lines_;
  Hook("submit-journaled");
  return Status::Ok();
}

void AdvisorService::EnsureShardSession(const advisor::AdvisorOptions& opts) {
  const size_t shards = advisor::ResolveShardCount(opts, *workload_);
  if (shards == 0) {
    shard_session_.reset();
    return;
  }
  if (shard_session_ != nullptr && shard_session_->shards() == shards) return;
  shard::ShardedOptions sharded;
  sharded.shards = shards;
  sharded.threads = opts.threads;
  sharded.max_steps = opts.recursive.max_steps;
  sharded.min_ratio = opts.recursive.min_ratio;
  sharded.max_index_width = opts.recursive.max_index_width;
  sharded.compression = opts.shard_compression;
  shard_session_ =
      std::make_unique<shard::ShardedSelector>(*engine_, sharded);
}

// ---------------------------------------------------------------------------
// The pump.
// ---------------------------------------------------------------------------

Result<advisor::Recommendation> AdvisorService::RunRound(
    bool* failed, uint64_t* sanitized_delta) {
  Hook("round-start");
  ++stats_.rounds_attempted;
  cancel_.Reset();

  advisor::AdvisorOptions opts = options_.advisor;
  opts.budget_fraction = budget_fraction_;
  opts.budget_bytes = budget_bytes_;
  opts.cancellation = &cancel_;
  opts.time_limit_seconds = options_.round_time_limit_seconds;
  EnsureShardSession(opts);
  opts.shard_session = shard_session_.get();

  const uint64_t sanitized_before = engine_->stats().sanitized;
  std::unique_ptr<Watchdog> watchdog;
  if (options_.round_time_limit_seconds !=
      std::numeric_limits<double>::infinity()) {
    watchdog = std::make_unique<Watchdog>(options_.round_time_limit_seconds,
                                          &cancel_);
  }
  auto result = advisor::Recommend(*engine_, opts);
  bool watchdog_fired = false;
  if (watchdog != nullptr) {
    watchdog_fired = watchdog->Disarm();
    if (watchdog_fired) {
      ++stats_.watchdog_cancels;
      Add(Slot::kServeWatchdogCancels);
    }
  }
  *sanitized_delta = engine_->stats().sanitized - sanitized_before;
  *failed = !result.ok() || *sanitized_delta > 0 || watchdog_fired;
  return result;
}

Result<PumpOutcome> AdvisorService::Pump() {
  if (state_ == ServiceState::kStopped) {
    return Status::Internal("serve: Pump after Stop");
  }
  Hook("pump-start");
  PumpOutcome outcome;
  outcome.epoch = epoch_;

  // 1. Fold pending deltas into the active workload.
  const std::vector<WorkloadDelta> drained = queue_.Drain();
  bool structural = false;
  std::vector<std::pair<workload::QueryId, double>> shifts;
  for (const WorkloadDelta& delta : drained) {
    bool budget_delta = false;
    const bool structural_delta = ApplyDelta(delta, &budget_delta);
    structural = structural || structural_delta;
    pending_budget_ = pending_budget_ || budget_delta;
    if (structural_delta || budget_delta) continue;
    // Anything non-structural that touched a known template is a
    // frequency shift (including re-adds of existing templates); the
    // queue coalesces per template key, so each index appears once.
    const int64_t idx = FindTemplate(delta);
    if (idx >= 0) {
      shifts.emplace_back(static_cast<workload::QueryId>(idx),
                          templates_[static_cast<size_t>(idx)].frequency);
      pending_shift_ = true;
    }
  }
  outcome.deltas_applied = drained.size();
  if (structural) {
    // Template set changed: query ids shift, so the engine (and its
    // warm tables) must be rebuilt against the new workload.
    RebuildEngine();
  } else if (!shifts.empty()) {
    // Frequencies only: update in place. Per-execution costs stay warm
    // in both the hashed caches and the dense kernel tables; only the
    // frequency-weighted maintenance state is dropped.
    for (const auto& [j, freq] : shifts) {
      const Status updated = workload_->UpdateQueryFrequency(j, freq);
      IDXSEL_CHECK(updated.ok());
    }
    engine_->InvalidateFrequencyDependentCaches();
    // The incremental promise of the sharded path: only the shards owning
    // shifted tables are rebuilt on the next round; the rest keep their
    // warm engines.
    if (shard_session_ != nullptr) {
      for (const auto& [j, freq] : shifts) {
        shard_session_->MarkDirty(templates_[static_cast<size_t>(j)].table);
      }
    }
  }
  pending_structural_ = pending_structural_ || structural;

  // Captured after any rebuild: a fresh engine's counters restart at 0.
  const uint64_t calls_before = engine_->stats().calls;

  // 2. Drift gate.
  const double threshold =
      options_.drift_threshold * workload_->total_frequency();
  const bool need_round = pending_structural_ || pending_budget_ ||
                          epoch_ == 0 ||
                          (pending_shift_ && drift_ >= threshold);
  if (!need_round) {
    if (log_lines_ > cursor_) {
      const Status absorbed = CommitAbsorb();
      if (!absorbed.ok()) return absorbed;
      outcome.note = "absorbed";
    } else {
      outcome.note = "idle";
    }
    outcome.degraded = committed_degraded_ || shed_since_commit_;
    outcome.whatif_calls = engine_->stats().calls - calls_before;
    return outcome;
  }

  // 3. Breaker gate: while open, serve the last commitment.
  if (breaker_.state() == BreakerState::kOpen) {
    if (!breaker_.Tick()) {
      state_ = ServiceState::kDegraded;
      outcome.degraded = true;
      outcome.note = "breaker-open";
      return outcome;
    }
  }
  if (breaker_.state() == BreakerState::kHalfOpen) {
    // Probe the *raw* backend — one base-cost call, no cache pollution.
    const double probe = backend_->BaseCost(0);
    const bool healthy = probe == probe && probe >= 0.0 &&
                         probe != std::numeric_limits<double>::infinity();
    if (!healthy) {
      breaker_.RecordFailure();
      ++stats_.breaker_trips;
      Add(Slot::kServeBreakerTrips);
      state_ = ServiceState::kDegraded;
      outcome.degraded = true;
      outcome.note = "probe-failed";
      return outcome;
    }
    breaker_.RecordSuccess();
    ++stats_.breaker_closes;
    Add(Slot::kServeBreakerCloses);
    // Self-heal: rounds that failed while the backend was sick cached
    // sanitized fallbacks; flush them (and forgive the engine's sticky
    // health verdict) so the next round sees — and reports — truth.
    engine_->InvalidateCostCache();
    engine_->ResetHealth();
    ++stats_.cache_flushes;
    Add(Slot::kServeCacheFlushes);
  }

  // 4. Selection round with retry + backoff.
  const char* trigger = pending_structural_ ? "structural"
                        : pending_budget_   ? "budget"
                        : epoch_ == 0       ? "initial"
                                            : "drift";
  backoff_.Reset();
  for (size_t attempt = 1; attempt <= options_.max_round_attempts; ++attempt) {
    outcome.ran_round = true;
    outcome.attempts = attempt;
    bool failed = false;
    uint64_t sanitized_delta = 0;
    auto result = RunRound(&failed, &sanitized_delta);
    if (!failed) {
      breaker_.RecordSuccess();
      const Status committed = Commit(std::move(result).value(), trigger);
      if (!committed.ok()) return committed;
      outcome.committed = true;
      outcome.epoch = epoch_;
      outcome.degraded = committed_degraded_;
      outcome.note = trigger;
      outcome.whatif_calls = engine_->stats().calls - calls_before;
      state_ = ServiceState::kIdle;
      return outcome;
    }

    // Failed round: sanitized fallbacks may be cached — flush before any
    // retry so the next attempt re-consults the backend for truth, and
    // clear health so a clean retry commits undegraded.
    engine_->InvalidateCostCache();
    engine_->ResetHealth();
    ++stats_.cache_flushes;
    Add(Slot::kServeCacheFlushes);
    const bool tripped = breaker_.RecordFailure();
    if (tripped) {
      ++stats_.breaker_trips;
      Add(Slot::kServeBreakerTrips);
      break;
    }
    if (attempt < options_.max_round_attempts) {
      ++stats_.retries;
      Add(Slot::kServeRetries);
      SleepFor(backoff_.NextDelaySeconds());
    }
  }

  // Round given up: drained deltas stay folded into the in-memory state
  // (drift_ and the pending flags keep the next pump retrying) and stay
  // uncommitted in the log (cursor unchanged), so a crash right now
  // recovers to exactly this retry point.
  state_ = ServiceState::kDegraded;
  last_round_failed_ = true;
  outcome.degraded = true;
  outcome.note = "round-failed";
  outcome.whatif_calls = engine_->stats().calls - calls_before;
  return outcome;
}

// ---------------------------------------------------------------------------
// Commit protocol.
// ---------------------------------------------------------------------------

Checkpoint AdvisorService::BuildCheckpoint(bool degraded) const {
  Checkpoint cp;
  cp.epoch = epoch_;
  cp.cursor = cursor_;
  cp.budget_fraction = budget_fraction_;
  cp.budget_bytes = budget_bytes_;
  cp.drift = drift_;
  cp.degraded = degraded;
  cp.cost_before = committed_rec_.cost_before;
  cp.cost_after = committed_rec_.cost_after;
  cp.memory = committed_rec_.memory;
  cp.selection = committed_rec_.selection;
  cp.plan = committed_plan_;
  auto text = workload::FormatWorkload(*workload_, names_);
  IDXSEL_CHECK(text.ok());
  cp.workload_text = std::move(text).value();
  return cp;
}

std::string AdvisorService::EpochJournalLine(
    const advisor::Recommendation& rec, const DeploymentPlan& plan,
    const char* trigger, uint64_t deltas_folded) const {
  // Deterministic fields only: no call counts, no timings, no retry
  // counts — the byte-identity guarantee of the chaos soak rides on it.
  std::string out = "{\"schema\":\"idxsel.serve.epoch.v1\"";
  out += ",\"strategy\":\"serve\",\"action\":\"epoch\"";
  out += ",\"epoch\":" + std::to_string(epoch_);
  out += ",\"round\":" + std::to_string(epoch_);
  out += ",\"trigger\":\"" + std::string(trigger) + "\"";
  out += ",\"cursor\":" + std::to_string(cursor_);
  out += ",\"deltas\":" + std::to_string(deltas_folded);
  out += ",\"winner\":\"" +
         std::string(advisor::StrategyKey(rec.executed_strategy)) + "\"";
  out += ",\"objective_before\":" + FormatExactDouble(rec.cost_before);
  out += ",\"objective_after\":" + FormatExactDouble(rec.cost_after);
  out += ",\"memory_after\":" + FormatExactDouble(rec.memory);
  out += ",\"budget\":" + FormatExactDouble(rec.budget);
  out += ",\"degraded\":" + std::string(rec.degraded ? "true" : "false");
  out += ",\"plan\":[";
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const PlanStep& step = plan.steps[i];
    if (i != 0) out += ',';
    out += "{\"op\":\"";
    out += step.create ? "create" : "drop";
    out += "\",\"index\":\"" + step.index.ToString() + "\"";
    out += ",\"memory_after\":" + FormatExactDouble(step.memory_after) + "}";
  }
  out += "]}\n";
  return out;
}

Status AdvisorService::Commit(advisor::Recommendation rec,
                              const char* trigger) {
  Hook("pre-commit");
  const uint64_t cursor_new = log_lines_;
  const uint64_t deltas_folded = cursor_new - cursor_;
  DeploymentPlan plan = BuildDeploymentPlan(*engine_, committed_rec_.selection,
                                            rec.selection, rec.budget);

  // Stage the post-commit state, then persist it: journal line first,
  // checkpoint rename last (the commit point). A crash in between leaves
  // an extra journal line that ReconcileEpochJournal truncates on
  // recovery before the re-run round re-appends it byte-identically.
  const uint64_t epoch_prev = epoch_;
  const uint64_t cursor_prev = cursor_;
  auto rec_prev = committed_rec_;
  auto plan_prev = committed_plan_;
  epoch_ += 1;
  cursor_ = cursor_new;
  committed_rec_ = std::move(rec);
  // Staged before BuildCheckpoint below: the checkpoint must carry THIS
  // epoch's plan, not the previous one's.
  committed_plan_ = std::move(plan);
  const double drift_prev = drift_;
  drift_ = 0.0;

  if (!options_.dir.empty()) {
    const Checkpoint cp = BuildCheckpoint(committed_rec_.degraded);
    const std::string body = SerializeCheckpoint(cp);
    const std::string path = checkpoint_path();
    const std::string tmp = path + ".tmp";
    auto undo = [&] {
      epoch_ = epoch_prev;
      cursor_ = cursor_prev;
      committed_rec_ = std::move(rec_prev);
      committed_plan_ = std::move(plan_prev);
      drift_ = drift_prev;
    };
    std::FILE* file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr) {
      undo();
      return Status::Internal("serve: cannot open " + tmp);
    }
    bool ok = std::fwrite(body.data(), 1, body.size(), file) == body.size() &&
              std::fflush(file) == 0;
#if defined(IDXSEL_SERVE_HAVE_FSYNC)
    ok = ok && ::fsync(::fileno(file)) == 0;
#endif
    ok = std::fclose(file) == 0 && ok;
    if (!ok) {
      std::remove(tmp.c_str());
      undo();
      return Status::Internal("serve: checkpoint write failed");
    }
    Hook("checkpoint-temp-written");
    const Status journaled = AppendEpochLine(
        EpochJournalLine(committed_rec_, committed_plan_, trigger,
                         deltas_folded));
    if (!journaled.ok()) {
      std::remove(tmp.c_str());
      undo();
      return journaled;
    }
    Hook("journal-appended");
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      undo();
      return Status::Internal("serve: checkpoint rename failed");
    }
    ++stats_.checkpoints_written;
    Add(Slot::kServeCheckpoints);
  }
  Hook("committed");

  committed_degraded_ = committed_rec_.degraded;
  pending_structural_ = false;
  pending_budget_ = false;
  pending_shift_ = false;
  shed_since_commit_ = false;
  last_round_failed_ = false;
  ++stats_.epochs;
  Add(Slot::kServeEpochs);

  // Mirror the transition onto the in-memory selection journal (the obs
  // bridge) for run reports and idxsel_report rendering.
  if (telemetry::JournalActive()) {
    telemetry::JournalEvent event;
    event.strategy = "serve";
    event.action = "epoch";
    event.round = epoch_;
    event.winner = advisor::StrategyKey(committed_rec_.executed_strategy);
    event.objective_before = committed_rec_.cost_before;
    event.objective_after = committed_rec_.cost_after;
    event.memory_after = committed_rec_.memory;
    event.note = trigger;
    telemetry::EmitJournal(event);
  }
  return Status::Ok();
}

Status AdvisorService::CommitAbsorb() {
  // Below-threshold deltas: make the cursor (and the shifted workload)
  // durable without a re-selection, so replay never grows unboundedly.
  const uint64_t cursor_prev = cursor_;
  cursor_ = log_lines_;
  if (!options_.dir.empty()) {
    const Status saved =
        SaveCheckpoint(checkpoint_path(), BuildCheckpoint(committed_degraded_));
    if (!saved.ok()) {
      cursor_ = cursor_prev;
      return saved;
    }
    ++stats_.checkpoints_written;
    Add(Slot::kServeCheckpoints);
  }
  ++stats_.absorb_commits;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Serving.
// ---------------------------------------------------------------------------

ServiceAnswer AdvisorService::Answer() const {
  ServiceAnswer answer;
  answer.epoch = epoch_;
  answer.recommendation = committed_rec_;
  answer.plan = committed_plan_;
  answer.degraded = epoch_ == 0 || committed_degraded_ ||
                    shed_since_commit_ || last_round_failed_ ||
                    breaker_.state() != BreakerState::kClosed;
  return answer;
}

Status AdvisorService::Stop() {
  if (state_ == ServiceState::kStopped) return Status::Ok();
  if (delta_log_ != nullptr) {
    std::fclose(delta_log_);
    delta_log_ = nullptr;
  }
  state_ = ServiceState::kStopped;
  return Status::Ok();
}

}  // namespace idxsel::serve
