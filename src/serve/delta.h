// Workload deltas — the ingestion protocol of idxsel::serve.
//
// A long-running advisor does not see workloads, it sees *drift*: templates
// appearing and disappearing, frequencies shifting with traffic, budgets
// renegotiated by operators (the AIM production loop — PAPERS.md). This
// header defines the four delta kinds, their single-line wire format (the
// service's write-ahead delta log is one FormatDelta line per accepted
// delta, replayed on recovery — doc/serve.md), and the bounded coalescing
// queue that is the service's admission control.
//
// Determinism contract: FormatDelta/ParseDelta round-trip every field
// bit-identically (frequencies use shortest-round-trip decimals), and
// DeltaQueue's coalescing is a pure function of the push sequence — so
// replaying the delta log through a fresh queue reproduces the crashed
// queue exactly. The chaos soak in tests/serve_test.cc depends on both.

#ifndef IDXSEL_SERVE_DELTA_H_
#define IDXSEL_SERVE_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/workload.h"

namespace idxsel::serve {

/// What a delta does to the active workload.
enum class DeltaKind {
  kAddTemplate,     ///< new query template (or re-add: frequency set)
  kRemoveTemplate,  ///< retire a template
  kFrequencyShift,  ///< b_j changes for an existing template
  kBudgetChange,    ///< new storage budget (fraction and/or bytes)
};

const char* DeltaKindName(DeltaKind kind);

/// One workload delta. Template identity is (table, sorted attribute set) —
/// the same canonicalization Workload::AddQuery applies — so a shift
/// submitted with attributes in any order finds its template.
struct WorkloadDelta {
  DeltaKind kind = DeltaKind::kFrequencyShift;
  workload::TableId table = 0;
  std::vector<workload::AttributeId> attributes;  ///< canonicalized on push
  double frequency = 0.0;  ///< add: initial b_j; shift: new absolute b_j
  bool write = false;      ///< add only: template kind
  double budget_fraction = 0.0;  ///< budget change: new w (0 = keep)
  double budget_bytes = 0.0;     ///< budget change: explicit bytes (0 = use w)
};

/// Shortest decimal string that strtod parses back to exactly `v`
/// ("1200", "0.1", "1234.5678900000001"); "inf"/"nan" pass through.
std::string FormatExactDouble(double v);

/// One-line wire form, e.g. "shift table=1 attrs=3,7 freq=250".
std::string FormatDelta(const WorkloadDelta& delta);

/// Inverse of FormatDelta; rejects malformed lines with InvalidArgument.
Result<WorkloadDelta> ParseDelta(const std::string& line);

/// Coalescing key: deltas with equal keys describe the same template (or
/// the budget) and collapse to the latest submission in the queue.
std::string DeltaKey(const WorkloadDelta& delta);

/// Admission verdict for one push.
enum class Admission {
  kAccepted,   ///< enqueued as a new entry
  kCoalesced,  ///< replaced an older queued delta for the same template
  kShed,       ///< queue full: rejected, serve from the last commitment
};

/// Bounded FIFO of pending deltas with same-template coalescing — the
/// service's admission control. Not thread-safe (the service serializes
/// all access). Coalescing keeps the *earlier* queue position and the
/// *later* payload; an add superseded by a shift stays an add (the
/// template may not exist in the committed state yet) with the shifted
/// frequency.
class DeltaQueue {
 public:
  explicit DeltaQueue(size_t capacity) : capacity_(capacity) {}

  /// Canonicalizes `delta`'s attribute set, then admits, coalesces, or
  /// sheds it. Shedding can only happen to new entries: a delta that
  /// coalesces never grows the queue and is always admitted.
  Admission Push(const WorkloadDelta& delta);

  /// Removes and returns all pending deltas in queue order.
  std::vector<WorkloadDelta> Drain();

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::vector<WorkloadDelta> items_;
};

}  // namespace idxsel::serve

#endif  // IDXSEL_SERVE_DELTA_H_
