// Crash-safe checkpoints for idxsel::serve.
//
// A checkpoint is the service's durable commitment: the full workload
// state (as a workload-file text block — the parser's Format/Parse round
// trip is bit-exact, see src/workload/parser.cc), the incumbent index
// configuration with its objective values, the budget, and the *cursor*
// into the write-ahead delta log. Recovery = load checkpoint + replay
// delta-log lines past the cursor; the chaos soak proves the result
// byte-identical to a run that never crashed (doc/serve.md).
//
// Durability protocol: serialize to <path>.tmp, flush + fsync, then
// std::rename over <path> — readers see either the old or the new
// checkpoint, never a torn one. The last line is an FNV-1a 64 checksum of
// everything above it; LoadCheckpoint rejects truncation, corruption, and
// version skew with a descriptive Status (the service cold-starts on any
// of them — never a crash, never a silent partial load).

#ifndef IDXSEL_SERVE_CHECKPOINT_H_
#define IDXSEL_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "costmodel/index.h"
#include "serve/plan.h"

namespace idxsel::serve {

/// First line of every checkpoint file; bump the suffix on layout changes.
inline constexpr const char* kCheckpointMagic = "idxsel.serve.checkpoint.v1";

/// Everything the service needs to resume exactly where it committed.
struct Checkpoint {
  uint64_t epoch = 0;   ///< committed re-selection rounds so far
  uint64_t cursor = 0;  ///< delta-log lines folded into this state
  double budget_fraction = 0.0;
  double budget_bytes = 0.0;
  /// Accumulated |Δb_j| not yet past the drift threshold (absorbed
  /// deltas); persisted so a recovered service triggers its next round
  /// at exactly the same submission as an uninterrupted one.
  double drift = 0.0;
  bool degraded = false;  ///< the incumbent was committed degraded
  double cost_before = 0.0;
  double cost_after = 0.0;
  double memory = 0.0;
  costmodel::IndexConfig selection;  ///< incumbent configuration
  /// Deployment plan that installed the incumbent (previous incumbent ->
  /// selection). Persisted so a recovered service serves the same
  /// Answer().plan as one that never crashed — it cannot be recomputed,
  /// the previous incumbent is gone.
  DeploymentPlan plan;
  std::string workload_text;  ///< workload::FormatWorkload of the state
};

/// FNV-1a 64-bit over `data` (the checkpoint/report checksum).
uint64_t Fnv1a64(std::string_view data);

/// Renders the full file body, checksum line included. Deterministic:
/// equal checkpoints serialize to equal bytes.
std::string SerializeCheckpoint(const Checkpoint& checkpoint);

/// Strict inverse of SerializeCheckpoint: verifies the magic (version
/// skew), the checksum (truncation / corruption), and every field.
Result<Checkpoint> DeserializeCheckpoint(const std::string& body);

/// Atomic durable write: <path>.tmp + fsync + rename.
Status SaveCheckpoint(const std::string& path, const Checkpoint& checkpoint);

/// Reads and verifies `path`. NotFound when the file does not exist (the
/// normal cold start); InvalidArgument for corrupt/truncated/skewed files.
Result<Checkpoint> LoadCheckpoint(const std::string& path);

}  // namespace idxsel::serve

#endif  // IDXSEL_SERVE_CHECKPOINT_H_
