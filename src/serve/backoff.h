// Seeded-jitter exponential backoff + circuit breaker for idxsel::serve.
//
// The service wraps every selection round's what-if traffic in a retry
// loop: transient backend garbage (detected by the engine's sanitizer —
// doc/robustness.md) is retried with exponentially growing, seeded-jitter
// delays; persistent garbage trips a circuit breaker that parks the
// service on its last committed recommendation (the degraded path) until
// a half-open probe against the raw backend succeeds.
//
// Both pieces are deliberately clock-free: backoff *computes* delays (the
// service decides how to sleep them — tests inject a recording no-op),
// and the breaker advances on Pump ticks, not wall time. That keeps every
// transition a pure function of the call sequence, which is what lets the
// chaos soak assert exact trip/half-open/close schedules per seed.

#ifndef IDXSEL_SERVE_BACKOFF_H_
#define IDXSEL_SERVE_BACKOFF_H_

#include <cstdint>

#include "common/random.h"

namespace idxsel::serve {

/// Retry-delay schedule knobs.
struct BackoffOptions {
  double initial_seconds = 0.05;  ///< first retry delay
  double multiplier = 2.0;        ///< growth per attempt
  double max_seconds = 2.0;       ///< delay ceiling (pre-jitter)
  /// Jitter band: the delay is scaled by a seeded uniform draw from
  /// [1 - jitter, 1], de-synchronizing fleets that trip together.
  double jitter = 0.25;
  uint64_t seed = 1;
};

/// delay(n) = min(max, initial * multiplier^n) * Uniform(1 - jitter, 1),
/// with the uniform draw from a private xoshiro stream (common/random.h):
/// the same seed yields the same delay sequence on every platform.
class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(const BackoffOptions& options)
      : opts_(options), rng_(options.seed), next_(options.initial_seconds) {}

  /// Delay to sleep before the next retry; advances the schedule.
  double NextDelaySeconds();

  /// Rewinds to the initial delay (the jitter stream keeps advancing, so
  /// repeated failure episodes still jitter independently).
  void Reset() { next_ = opts_.initial_seconds; }

 private:
  BackoffOptions opts_;
  Rng rng_;
  double next_;
};

/// Breaker states, classic semantics (Nygard): closed = normal service,
/// open = fail fast from the last commitment, half-open = one probe
/// decides.
enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  /// Consecutive round failures that trip closed -> open.
  uint64_t trip_after_failures = 3;
  /// Pump ticks spent open before transitioning to half-open.
  uint64_t open_ticks = 2;
};

/// Tick-driven circuit breaker (no clocks — see file comment). The service
/// calls RecordSuccess/RecordFailure after each selection round, and
/// Tick() once per Pump while open.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const CircuitBreakerOptions& options)
      : opts_(options) {}

  BreakerState state() const { return state_; }

  /// True when a selection attempt (or half-open probe) may proceed.
  bool AllowAttempt() const { return state_ != BreakerState::kOpen; }

  /// Round failed. Closed: counts toward the trip threshold. Half-open:
  /// the probe failed — snap back to open. Returns true iff this call
  /// tripped (or re-tripped) the breaker.
  bool RecordFailure();

  /// Round (or probe) succeeded. Returns true iff this call closed a
  /// half-open breaker — the caller's cue to flush possibly-poisoned
  /// caches (doc/serve.md, "self-healing").
  bool RecordSuccess();

  /// One Pump elapsed while open; after open_ticks of them the breaker
  /// half-opens. Returns true on the open -> half-open transition. No-op
  /// in other states.
  bool Tick();

  uint64_t trips() const { return trips_; }
  uint64_t closes() const { return closes_; }

 private:
  CircuitBreakerOptions opts_;
  BreakerState state_ = BreakerState::kClosed;
  uint64_t consecutive_failures_ = 0;
  uint64_t ticks_open_ = 0;
  uint64_t trips_ = 0;
  uint64_t closes_ = 0;
};

}  // namespace idxsel::serve

#endif  // IDXSEL_SERVE_BACKOFF_H_
