// AdvisorService — the long-running, crash-safe advisor of idxsel::serve.
//
// Lifecycle (doc/serve.md has the full state machine):
//
//   Start ──recover-or-cold──► IDLE ──Submit*──► Pump ──► IDLE
//                                │                 │
//                                │          round fails / breaker opens
//                                ▼                 ▼
//                             STOPPED ◄──Stop── DEGRADED (serves last
//                                                commitment, degraded=true)
//
// Each Pump() drains the bounded delta queue, applies the deltas to the
// active workload (frequency shifts in place — the what-if caches and
// dense kernel tables stay warm; structural changes rebuild the engine),
// and, when drift warrants, runs one *incremental* re-selection round via
// advisor::Recommend. A clean round commits atomically: checkpoint
// (temp + rename + checksum), epoch journal line, deployment plan. A
// dirty round (backend garbage detected by the engine sanitizer, or a
// watchdog cancellation) retries under seeded-jitter backoff and
// eventually trips the circuit breaker; the service then answers from its
// last committed recommendation until a half-open probe heals it.
//
// Threading: the public API is single-caller (one pump loop); internally
// a watchdog thread may cancel a hung round via rt::CancellationToken.
//
// Determinism: every durable byte (checkpoint, epoch journal) is a pure
// function of the base workload, the accepted delta sequence, and the
// backend's answers — never of call counts, retry timing, or thread
// interleaving. That is what the chaos soak's byte-identity assertions
// (tests/serve_test.cc) rest on.

#ifndef IDXSEL_SERVE_SERVICE_H_
#define IDXSEL_SERVE_SERVICE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "common/status.h"
#include "costmodel/cost_model.h"
#include "serve/backoff.h"
#include "serve/checkpoint.h"
#include "serve/delta.h"
#include "serve/plan.h"
#include "shard/sharded_selector.h"

namespace idxsel::serve {

/// Produces the what-if backend for one incarnation of the active
/// workload. The service re-invokes it on every structural rebuild (the
/// workload object — and its query ids — changes), so the backend always
/// answers for the workload the engine is asking about; frequency shifts
/// do not rebuild, keeping the backend (and its caches upstream) warm.
/// The returned backend is owned by the service until the next rebuild.
using BackendFactory = std::function<std::unique_ptr<costmodel::WhatIfBackend>(
    const workload::Workload&)>;

/// Factory over the bundled Appendix-B analytic model; the returned
/// backends own their CostModel.
BackendFactory MakeModelBackendFactory(costmodel::CostModelParams params = {});

/// Test/bench instrumentation. `at` is invoked at named points of the
/// commit protocol ("pump-start", "round-start", "pre-commit",
/// "checkpoint-temp-written", "journal-appended", "committed",
/// "submit-journaled"); the chaos soak injects crashes by throwing from
/// it. `sleep` receives backoff delays (default: actually sleeps).
struct ServeHooks {
  std::function<void(const char* point)> at;
  std::function<void(double seconds)> sleep;
};

struct ServiceOptions {
  /// Per-round advisor configuration. budget_fraction/budget_bytes seed
  /// the service's budget state (later budget deltas override);
  /// time_limit_seconds and cancellation are managed by the service.
  advisor::AdvisorOptions advisor;

  /// State directory for checkpoint + delta log + epoch journal. Empty =
  /// fully in-memory (no durability, no recovery).
  std::string dir;

  size_t queue_capacity = 1024;

  /// Re-select when accumulated absolute frequency drift reaches this
  /// fraction of the workload's total frequency. 0 = every pump with
  /// pending deltas re-selects. Structural and budget deltas always do.
  double drift_threshold = 0.0;

  /// Selection-round retry budget before the pump gives up (the breaker
  /// may give up earlier).
  size_t max_round_attempts = 3;

  BackoffOptions backoff;
  CircuitBreakerOptions breaker;

  /// Watchdog budget per selection attempt: a round still running after
  /// this long is cancelled via rt::CancellationToken and counted as a
  /// failure (then retried / breaker-handled). Infinity = no watchdog.
  double round_time_limit_seconds = std::numeric_limits<double>::infinity();

  ServeHooks hooks;
};

enum class ServiceState { kIdle, kDegraded, kStopped };

const char* ServiceStateName(ServiceState state);

/// Monotone lifecycle counters (mirrored on idxsel.serve.* telemetry).
struct ServeStats {
  uint64_t deltas_accepted = 0;
  uint64_t deltas_coalesced = 0;
  uint64_t deltas_shed = 0;
  uint64_t deltas_skipped = 0;  ///< unknown-template shift/remove
  uint64_t epochs = 0;
  uint64_t absorb_commits = 0;  ///< cursor-only checkpoints (below drift)
  uint64_t rounds_attempted = 0;
  uint64_t retries = 0;
  uint64_t breaker_trips = 0;
  uint64_t breaker_closes = 0;
  uint64_t watchdog_cancels = 0;
  uint64_t checkpoints_written = 0;
  uint64_t recoveries = 0;    ///< warm starts from a valid checkpoint
  uint64_t cold_starts = 0;   ///< no/invalid checkpoint at Start
  uint64_t cache_flushes = 0;
  uint64_t engine_rebuilds = 0;  ///< structural deltas
  uint64_t replayed_deltas = 0;
};

/// What one Pump() did.
struct PumpOutcome {
  uint64_t epoch = 0;      ///< committed epoch after this pump
  bool ran_round = false;
  bool committed = false;  ///< a new epoch was committed
  bool degraded = false;   ///< answered/answering from stale commitment
  uint64_t deltas_applied = 0;
  uint64_t whatif_calls = 0;  ///< engine backend calls during this pump
  uint64_t attempts = 0;
  const char* note = "";  ///< "idle", "absorbed", "breaker-open", ...
};

/// The service's current answer: always available, possibly stale.
struct ServiceAnswer {
  uint64_t epoch = 0;
  bool degraded = true;
  advisor::Recommendation recommendation;
  DeploymentPlan plan;  ///< plan that produced the incumbent
};

class AdvisorService {
 public:
  /// Boots the service. With a state dir, attempts recovery: a valid
  /// checkpoint is loaded and the delta log replayed past its cursor
  /// (stats().recoveries); a missing or rejected (truncated / corrupt /
  /// version-skewed) checkpoint falls back to a clean cold start from
  /// `base` (stats().cold_starts) — never an error, never a partial load.
  static Result<std::unique_ptr<AdvisorService>> Start(
      const workload::NamedWorkload& base, BackendFactory factory,
      const ServiceOptions& options);

  ~AdvisorService();
  AdvisorService(const AdvisorService&) = delete;
  AdvisorService& operator=(const AdvisorService&) = delete;

  /// Admits one delta: appended to the write-ahead delta log (fsync),
  /// then queued (coalescing with pending same-template deltas). Returns
  /// ResourceLimit when the queue sheds it — the caller keeps getting
  /// answers from the last commitment, flagged degraded.
  Status Submit(const WorkloadDelta& delta);

  /// Drains the queue, applies deltas, and re-selects when drift, a
  /// structural change, a budget change, or a missing first commitment
  /// demands it. Returns the outcome (never an error for round failures
  /// — those degrade; errors are reserved for misuse, e.g. stopped).
  Result<PumpOutcome> Pump();

  /// Last committed recommendation + deployment plan. `degraded` is true
  /// until the first commit, after shedding, while the breaker is not
  /// closed, or when the committed round itself was degraded.
  ServiceAnswer Answer() const;

  ServiceState state() const { return state_; }
  BreakerState breaker_state() const { return breaker_.state(); }
  const ServeStats& stats() const { return stats_; }
  const workload::Workload& workload() const { return *workload_; }
  costmodel::WhatIfEngine& engine() { return *engine_; }

  /// Graceful shutdown: closes the delta log; no new Submit/Pump.
  /// Durable state is already on disk (commits are synchronous).
  Status Stop();

  std::string checkpoint_path() const;
  std::string delta_log_path() const;
  std::string epoch_log_path() const;

 private:
  struct TemplateEntry {
    workload::TableId table = 0;
    std::vector<workload::AttributeId> attrs;  ///< sorted unique
    double frequency = 0.0;
    bool write = false;
  };

  AdvisorService(const workload::NamedWorkload& base, BackendFactory factory,
                 const ServiceOptions& options);

  void Hook(const char* point);
  void SleepFor(double seconds);

  /// templates_ -> fresh Workload (+ engine). Base schema ids preserved.
  void RebuildEngine();

  /// Applies one drained delta to templates_; returns true when it was a
  /// structural change (add/remove), false otherwise.
  bool ApplyDelta(const WorkloadDelta& delta, bool* budget_changed);

  int64_t FindTemplate(const WorkloadDelta& delta) const;

  /// One selection attempt; returns the advisor result and whether this
  /// attempt failed (error / sanitized garbage / watchdog cancel).
  Result<advisor::Recommendation> RunRound(bool* failed,
                                           uint64_t* sanitized_delta);

  /// Creates/drops the reusable sharded-selection session to match what
  /// advisor::ResolveShardCount says about `opts` and the active
  /// workload. Keeping the session across rounds is what makes
  /// frequency-shift deltas incremental: MarkDirty() confines the rebuild
  /// to the shard owning the shifted template's table, every other
  /// shard's engine (and its warm what-if caches) carries over.
  void EnsureShardSession(const advisor::AdvisorOptions& opts);

  /// Commit protocol: build plan, write checkpoint + epoch journal line
  /// atomically, advance epoch/cursor, refresh the served answer.
  Status Commit(advisor::Recommendation rec, const char* trigger);

  /// Cursor-only durability for absorbed (below-threshold) deltas.
  Status CommitAbsorb();

  Checkpoint BuildCheckpoint(bool degraded) const;
  std::string EpochJournalLine(const advisor::Recommendation& rec,
                               const DeploymentPlan& plan, const char* trigger,
                               uint64_t deltas_folded) const;

  // -- Recovery -------------------------------------------------------------
  Status TryRecover();   ///< ok() = warm-started; error = caller cold-starts
  void ColdStart();
  Status ReplayDeltaLog(uint64_t from_line);
  void ReconcileEpochJournal(uint64_t max_epoch);
  Status OpenDeltaLog();
  Status AppendDeltaLine(const std::string& line);
  Status AppendEpochLine(const std::string& line);

  // -- Immutable base -------------------------------------------------------
  const workload::Workload base_;  ///< schema donor (tables + attributes)
  std::vector<std::string> names_;
  BackendFactory factory_;
  ServiceOptions options_;

  // -- Active state (declaration order is destruction-safety: the engine
  // borrows the backend, the backend may borrow the workload) -----------
  std::vector<TemplateEntry> templates_;
  std::unique_ptr<workload::Workload> workload_;
  std::unique_ptr<costmodel::WhatIfBackend> backend_;
  std::unique_ptr<costmodel::WhatIfEngine> engine_;
  /// Reusable sharded-selection session (borrows engine_; declared after
  /// it so destruction unwinds borrower-first). Reset on every structural
  /// rebuild, marked dirty per table on frequency shifts.
  std::unique_ptr<shard::ShardedSelector> shard_session_;
  double budget_fraction_ = 0.2;
  double budget_bytes_ = 0.0;

  // -- Commit state ---------------------------------------------------------
  uint64_t epoch_ = 0;
  uint64_t cursor_ = 0;     ///< delta-log lines committed
  uint64_t log_lines_ = 0;  ///< delta-log lines accepted (ever)
  double drift_ = 0.0;
  bool pending_structural_ = false;
  bool pending_budget_ = false;
  bool pending_shift_ = false;  ///< uncommitted frequency shifts exist
  bool shed_since_commit_ = false;
  bool last_round_failed_ = false;
  advisor::Recommendation committed_rec_;
  DeploymentPlan committed_plan_;
  bool committed_degraded_ = false;

  // -- Machinery ------------------------------------------------------------
  DeltaQueue queue_;
  ExponentialBackoff backoff_;
  CircuitBreaker breaker_;
  rt::CancellationToken cancel_;
  ServiceState state_ = ServiceState::kIdle;
  ServeStats stats_;
  std::FILE* delta_log_ = nullptr;
};

}  // namespace idxsel::serve

#endif  // IDXSEL_SERVE_SERVICE_H_
