#include "serve/delta.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace idxsel::serve {
namespace {

/// "3,7,12" -> vector; empty string is an error (deltas always name at
/// least one attribute).
Result<std::vector<workload::AttributeId>> ParseAttrList(
    const std::string& text) {
  std::vector<workload::AttributeId> attrs;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    char* end = nullptr;
    const unsigned long value = std::strtoul(token.c_str(), &end, 10);
    if (token.empty() || end == nullptr || *end != '\0') {
      return Status::InvalidArgument("delta: bad attribute id '" + token +
                                     "'");
    }
    attrs.push_back(static_cast<workload::AttributeId>(value));
    pos = comma + 1;
  }
  if (attrs.empty()) {
    return Status::InvalidArgument("delta: empty attribute list");
  }
  return attrs;
}

void Canonicalize(std::vector<workload::AttributeId>& attrs) {
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
}

}  // namespace

const char* DeltaKindName(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kAddTemplate:
      return "add";
    case DeltaKind::kRemoveTemplate:
      return "remove";
    case DeltaKind::kFrequencyShift:
      return "shift";
    case DeltaKind::kBudgetChange:
      return "budget";
  }
  return "unknown";
}

std::string FormatExactDouble(double v) {
  char buf[32];
  for (int digits = 15; digits <= 17; ++digits) {
    std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
    if (std::strtod(buf, nullptr) == v || v != v) break;
  }
  return buf;
}

std::string FormatDelta(const WorkloadDelta& delta) {
  std::string out = DeltaKindName(delta.kind);
  if (delta.kind == DeltaKind::kBudgetChange) {
    out += " fraction=" + FormatExactDouble(delta.budget_fraction);
    out += " bytes=" + FormatExactDouble(delta.budget_bytes);
    return out;
  }
  out += " table=" + std::to_string(delta.table);
  out += " attrs=";
  for (size_t u = 0; u < delta.attributes.size(); ++u) {
    if (u != 0) out += ',';
    out += std::to_string(delta.attributes[u]);
  }
  if (delta.kind != DeltaKind::kRemoveTemplate) {
    out += " freq=" + FormatExactDouble(delta.frequency);
  }
  if (delta.kind == DeltaKind::kAddTemplate && delta.write) out += " write";
  return out;
}

Result<WorkloadDelta> ParseDelta(const std::string& line) {
  std::istringstream in(line);
  std::string verb;
  if (!(in >> verb)) return Status::InvalidArgument("delta: empty line");

  WorkloadDelta delta;
  if (verb == "add") {
    delta.kind = DeltaKind::kAddTemplate;
  } else if (verb == "remove") {
    delta.kind = DeltaKind::kRemoveTemplate;
  } else if (verb == "shift") {
    delta.kind = DeltaKind::kFrequencyShift;
  } else if (verb == "budget") {
    delta.kind = DeltaKind::kBudgetChange;
  } else {
    return Status::InvalidArgument("delta: unknown verb '" + verb + "'");
  }

  bool saw_table = false, saw_attrs = false, saw_freq = false;
  std::string token;
  while (in >> token) {
    if (token == "write") {
      if (delta.kind != DeltaKind::kAddTemplate) {
        return Status::InvalidArgument("delta: 'write' only valid on add");
      }
      delta.write = true;
      continue;
    }
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("delta: bad token '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    char* end = nullptr;
    if (key == "table") {
      delta.table =
          static_cast<workload::TableId>(std::strtoul(value.c_str(), &end, 10));
      if (value.empty() || *end != '\0') {
        return Status::InvalidArgument("delta: bad table id");
      }
      saw_table = true;
    } else if (key == "attrs") {
      auto attrs = ParseAttrList(value);
      if (!attrs.ok()) return attrs.status();
      delta.attributes = std::move(attrs).value();
      saw_attrs = true;
    } else if (key == "freq") {
      delta.frequency = std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0' || !(delta.frequency > 0.0)) {
        return Status::InvalidArgument("delta: freq must be positive");
      }
      saw_freq = true;
    } else if (key == "fraction") {
      delta.budget_fraction = std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0' || delta.budget_fraction < 0.0) {
        return Status::InvalidArgument("delta: bad budget fraction");
      }
    } else if (key == "bytes") {
      delta.budget_bytes = std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0' || delta.budget_bytes < 0.0) {
        return Status::InvalidArgument("delta: bad budget bytes");
      }
    } else {
      return Status::InvalidArgument("delta: unknown key '" + key + "'");
    }
  }

  if (delta.kind == DeltaKind::kBudgetChange) {
    if (saw_table || saw_attrs || saw_freq) {
      return Status::InvalidArgument("delta: budget takes no template fields");
    }
    return delta;
  }
  if (!saw_table || !saw_attrs) {
    return Status::InvalidArgument("delta: requires table= and attrs=");
  }
  if (delta.kind != DeltaKind::kRemoveTemplate && !saw_freq) {
    return Status::InvalidArgument("delta: requires freq=");
  }
  Canonicalize(delta.attributes);
  return delta;
}

std::string DeltaKey(const WorkloadDelta& delta) {
  if (delta.kind == DeltaKind::kBudgetChange) return "budget";
  std::string key = std::to_string(delta.table) + ":";
  for (size_t u = 0; u < delta.attributes.size(); ++u) {
    if (u != 0) key += ',';
    key += std::to_string(delta.attributes[u]);
  }
  return key;
}

Admission DeltaQueue::Push(const WorkloadDelta& delta) {
  WorkloadDelta canonical = delta;
  Canonicalize(canonical.attributes);
  const std::string key = DeltaKey(canonical);
  for (WorkloadDelta& queued : items_) {
    if (DeltaKey(queued) != key) continue;
    // Latest payload wins, earliest position is kept. One asymmetry: a
    // pending add downgraded by a shift must stay an add, or the template
    // would never materialize when it is absent from the committed state.
    if (queued.kind == DeltaKind::kAddTemplate &&
        canonical.kind == DeltaKind::kFrequencyShift) {
      queued.frequency = canonical.frequency;
    } else {
      queued = canonical;
    }
    return Admission::kCoalesced;
  }
  if (items_.size() >= capacity_) return Admission::kShed;
  items_.push_back(std::move(canonical));
  return Admission::kAccepted;
}

std::vector<WorkloadDelta> DeltaQueue::Drain() {
  std::vector<WorkloadDelta> drained = std::move(items_);
  items_.clear();
  return drained;
}

}  // namespace idxsel::serve
