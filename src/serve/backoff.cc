#include "serve/backoff.h"

#include <algorithm>

namespace idxsel::serve {

double ExponentialBackoff::NextDelaySeconds() {
  const double base = std::min(next_, opts_.max_seconds);
  next_ = std::min(next_ * opts_.multiplier, opts_.max_seconds);
  const double scale =
      opts_.jitter > 0.0 ? rng_.Uniform(1.0 - opts_.jitter, 1.0) : 1.0;
  return base * scale;
}

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

bool CircuitBreaker::RecordFailure() {
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= opts_.trip_after_failures) {
        state_ = BreakerState::kOpen;
        ticks_open_ = 0;
        ++trips_;
        return true;
      }
      return false;
    case BreakerState::kHalfOpen:
      state_ = BreakerState::kOpen;
      ticks_open_ = 0;
      ++trips_;
      return true;
    case BreakerState::kOpen:
      return false;
  }
  return false;
}

bool CircuitBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    state_ = BreakerState::kClosed;
    ++closes_;
    return true;
  }
  return false;
}

bool CircuitBreaker::Tick() {
  if (state_ != BreakerState::kOpen) return false;
  if (++ticks_open_ >= opts_.open_ticks) {
    state_ = BreakerState::kHalfOpen;
    return true;
  }
  return false;
}

}  // namespace idxsel::serve
