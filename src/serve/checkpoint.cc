#include "serve/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define IDXSEL_SERVE_HAVE_FSYNC 1
#endif

#include "serve/delta.h"

namespace idxsel::serve {
namespace {

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("checkpoint: " + what);
}

/// Reads "<key> <value...>" from `line`; the value is the remainder.
bool SplitField(const std::string& line, const std::string& key,
                std::string* value) {
  if (line.size() <= key.size() || line.compare(0, key.size(), key) != 0 ||
      line[key.size()] != ' ') {
    return false;
  }
  *value = line.substr(key.size() + 1);
  return true;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return !text.empty() && end != nullptr && *end == '\0';
}

bool ParseF64(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return !text.empty() && end != nullptr && *end == '\0';
}

}  // namespace

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char ch : data) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string SerializeCheckpoint(const Checkpoint& cp) {
  std::string out = kCheckpointMagic;
  out += '\n';
  out += "epoch " + std::to_string(cp.epoch) + "\n";
  out += "cursor " + std::to_string(cp.cursor) + "\n";
  out += "budget_fraction " + FormatExactDouble(cp.budget_fraction) + "\n";
  out += "budget_bytes " + FormatExactDouble(cp.budget_bytes) + "\n";
  out += "drift " + FormatExactDouble(cp.drift) + "\n";
  out += "degraded " + std::string(cp.degraded ? "1" : "0") + "\n";
  out += "cost_before " + FormatExactDouble(cp.cost_before) + "\n";
  out += "cost_after " + FormatExactDouble(cp.cost_after) + "\n";
  out += "memory " + FormatExactDouble(cp.memory) + "\n";
  out += "selection " + std::to_string(cp.selection.size()) + "\n";
  for (const costmodel::Index& k : cp.selection.indexes()) {
    out += "index ";
    for (size_t u = 0; u < k.width(); ++u) {
      if (u != 0) out += ',';
      out += std::to_string(k.attribute(u));
    }
    out += '\n';
  }
  out += "plan_budget " + FormatExactDouble(cp.plan.budget) + "\n";
  out += "plan_initial " + FormatExactDouble(cp.plan.initial_memory) + "\n";
  out += "plan_final " + FormatExactDouble(cp.plan.final_memory) + "\n";
  out += "plan " + std::to_string(cp.plan.steps.size()) + "\n";
  for (const PlanStep& step : cp.plan.steps) {
    out += "step ";
    out += step.create ? 'C' : 'D';
    out += ' ';
    for (size_t u = 0; u < step.index.width(); ++u) {
      if (u != 0) out += ',';
      out += std::to_string(step.index.attribute(u));
    }
    out += ' ' + FormatExactDouble(step.benefit);
    out += ' ' + FormatExactDouble(step.memory_delta);
    out += ' ' + FormatExactDouble(step.memory_after);
    out += '\n';
  }
  out += "workload " + std::to_string(cp.workload_text.size()) + "\n";
  out += cp.workload_text;
  if (!cp.workload_text.empty() && cp.workload_text.back() != '\n') {
    out += '\n';
  }
  char checksum[32];
  std::snprintf(checksum, sizeof(checksum), "checksum %016llx\n",
                static_cast<unsigned long long>(Fnv1a64(out)));
  out += checksum;
  return out;
}

Result<Checkpoint> DeserializeCheckpoint(const std::string& body) {
  // Checksum first: the last line must be "checksum <16 hex>" and must
  // match the bytes above it. Truncated or bit-flipped files die here.
  constexpr size_t kChecksumLineLen = sizeof("checksum 0123456789abcdef");
  if (body.size() < kChecksumLineLen || body.back() != '\n') {
    return Malformed("truncated (no checksum line)");
  }
  const size_t line_start = body.rfind('\n', body.size() - 2);
  const size_t payload_end =
      line_start == std::string::npos ? 0 : line_start + 1;
  const std::string last =
      body.substr(payload_end, body.size() - payload_end - 1);
  std::string checksum_text;
  if (!SplitField(last, "checksum", &checksum_text)) {
    return Malformed("truncated (no checksum line)");
  }
  char* end = nullptr;
  const uint64_t stated = std::strtoull(checksum_text.c_str(), &end, 16);
  if (checksum_text.size() != 16 || *end != '\0') {
    return Malformed("malformed checksum");
  }
  const uint64_t actual = Fnv1a64(std::string_view(body).substr(0, payload_end));
  if (stated != actual) {
    return Malformed("checksum mismatch (corrupt or truncated)");
  }

  std::istringstream in(body.substr(0, payload_end));
  std::string line;
  if (!std::getline(in, line)) return Malformed("empty");
  if (line != kCheckpointMagic) {
    return Malformed("version skew: got '" + line + "', want '" +
                     kCheckpointMagic + "'");
  }

  Checkpoint cp;
  std::string value;
  auto next_field = [&](const char* key) -> Status {
    if (!std::getline(in, line) || !SplitField(line, key, &value)) {
      return Malformed(std::string("missing field '") + key + "'");
    }
    return Status::Ok();
  };
  Status s;
  if (!(s = next_field("epoch")).ok()) return s;
  if (!ParseU64(value, &cp.epoch)) return Malformed("bad epoch");
  if (!(s = next_field("cursor")).ok()) return s;
  if (!ParseU64(value, &cp.cursor)) return Malformed("bad cursor");
  if (!(s = next_field("budget_fraction")).ok()) return s;
  if (!ParseF64(value, &cp.budget_fraction)) return Malformed("bad fraction");
  if (!(s = next_field("budget_bytes")).ok()) return s;
  if (!ParseF64(value, &cp.budget_bytes)) return Malformed("bad bytes");
  if (!(s = next_field("drift")).ok()) return s;
  if (!ParseF64(value, &cp.drift)) return Malformed("bad drift");
  if (!(s = next_field("degraded")).ok()) return s;
  if (value != "0" && value != "1") return Malformed("bad degraded flag");
  cp.degraded = value == "1";
  if (!(s = next_field("cost_before")).ok()) return s;
  if (!ParseF64(value, &cp.cost_before)) return Malformed("bad cost_before");
  if (!(s = next_field("cost_after")).ok()) return s;
  if (!ParseF64(value, &cp.cost_after)) return Malformed("bad cost_after");
  if (!(s = next_field("memory")).ok()) return s;
  if (!ParseF64(value, &cp.memory)) return Malformed("bad memory");

  if (!(s = next_field("selection")).ok()) return s;
  uint64_t num_indexes = 0;
  if (!ParseU64(value, &num_indexes)) return Malformed("bad selection count");
  for (uint64_t i = 0; i < num_indexes; ++i) {
    if (!(s = next_field("index")).ok()) return s;
    std::vector<workload::AttributeId> attrs;
    size_t pos = 0;
    while (pos <= value.size()) {
      size_t comma = value.find(',', pos);
      if (comma == std::string::npos) comma = value.size();
      const std::string token = value.substr(pos, comma - pos);
      char* attr_end = nullptr;
      const unsigned long attr = std::strtoul(token.c_str(), &attr_end, 10);
      if (token.empty() || *attr_end != '\0') {
        return Malformed("bad index attribute list");
      }
      attrs.push_back(static_cast<workload::AttributeId>(attr));
      pos = comma + 1;
    }
    if (attrs.empty()) return Malformed("empty index");
    cp.selection.Insert(costmodel::Index(std::move(attrs)));
  }

  if (!(s = next_field("plan_budget")).ok()) return s;
  if (!ParseF64(value, &cp.plan.budget)) return Malformed("bad plan budget");
  if (!(s = next_field("plan_initial")).ok()) return s;
  if (!ParseF64(value, &cp.plan.initial_memory)) {
    return Malformed("bad plan initial memory");
  }
  if (!(s = next_field("plan_final")).ok()) return s;
  if (!ParseF64(value, &cp.plan.final_memory)) {
    return Malformed("bad plan final memory");
  }
  if (!(s = next_field("plan")).ok()) return s;
  uint64_t num_steps = 0;
  if (!ParseU64(value, &num_steps)) return Malformed("bad plan count");
  for (uint64_t i = 0; i < num_steps; ++i) {
    if (!(s = next_field("step")).ok()) return s;
    // "C|D <a,b,...> <benefit> <memory_delta> <memory_after>"
    std::vector<std::string> tokens;
    size_t pos = 0;
    while (pos <= value.size()) {
      size_t space = value.find(' ', pos);
      if (space == std::string::npos) space = value.size();
      tokens.push_back(value.substr(pos, space - pos));
      pos = space + 1;
    }
    if (tokens.size() != 5 || (tokens[0] != "C" && tokens[0] != "D")) {
      return Malformed("bad plan step");
    }
    PlanStep step;
    step.create = tokens[0] == "C";
    std::vector<workload::AttributeId> attrs;
    pos = 0;
    const std::string& attr_list = tokens[1];
    while (pos <= attr_list.size()) {
      size_t comma = attr_list.find(',', pos);
      if (comma == std::string::npos) comma = attr_list.size();
      const std::string token = attr_list.substr(pos, comma - pos);
      char* attr_end = nullptr;
      const unsigned long attr = std::strtoul(token.c_str(), &attr_end, 10);
      if (token.empty() || *attr_end != '\0') {
        return Malformed("bad plan step attributes");
      }
      attrs.push_back(static_cast<workload::AttributeId>(attr));
      pos = comma + 1;
    }
    if (attrs.empty()) return Malformed("bad plan step attributes");
    step.index = costmodel::Index(std::move(attrs));
    if (!ParseF64(tokens[2], &step.benefit) ||
        !ParseF64(tokens[3], &step.memory_delta) ||
        !ParseF64(tokens[4], &step.memory_after)) {
      return Malformed("bad plan step numbers");
    }
    cp.plan.steps.push_back(std::move(step));
  }

  if (!(s = next_field("workload")).ok()) return s;
  uint64_t workload_bytes = 0;
  if (!ParseU64(value, &workload_bytes)) return Malformed("bad workload size");
  std::string rest((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (rest.size() < workload_bytes) {
    return Malformed("workload block shorter than declared");
  }
  cp.workload_text = rest.substr(0, workload_bytes);
  return cp;
}

Status SaveCheckpoint(const std::string& path, const Checkpoint& cp) {
  const std::string body = SerializeCheckpoint(cp);
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("checkpoint: cannot open " + tmp);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), file);
  bool ok = written == body.size() && std::fflush(file) == 0;
#if defined(IDXSEL_SERVE_HAVE_FSYNC)
  ok = ok && ::fsync(::fileno(file)) == 0;
#endif
  ok = std::fclose(file) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("checkpoint: rename to " + path + " failed");
  }
  return Status::Ok();
}

Result<Checkpoint> LoadCheckpoint(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("checkpoint: no file at " + path);
  }
  std::string body;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    body.append(buf, got);
  }
  std::fclose(file);
  return DeserializeCheckpoint(body);
}

}  // namespace idxsel::serve
