// Deployment plans — ordered create/drop sequences under a budget.
//
// Re-selection produces a *target* configuration; a production system
// must morph the *incumbent* into it one index at a time without ever
// exceeding the storage budget mid-flight (Kimura et al., "Optimizing
// Index Deployment Order" — PAPERS.md). BuildDeploymentPlan orders the
// diff so that (a) drops are emitted exactly when needed to make room,
// (b) the most beneficial creates land first among those that fit, and
// (c) every plan prefix that ends in a create is within budget and every
// drop only lowers memory — so a feasible target is reached through
// feasible intermediate states (proof sketch in doc/serve.md: the target
// fits the budget, so after all drops every remaining create fits too).

#ifndef IDXSEL_SERVE_PLAN_H_
#define IDXSEL_SERVE_PLAN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "costmodel/index.h"
#include "costmodel/what_if.h"

namespace idxsel::serve {

/// One CREATE INDEX / DROP INDEX operation.
struct PlanStep {
  bool create = true;
  costmodel::Index index;
  /// Solo benefit of the index: frequency-weighted cost reduction over
  /// the posting-list queries of its leading attribute (cached what-if
  /// reads; the ordering key).
  double benefit = 0.0;
  double memory_delta = 0.0;  ///< signed bytes (negative for drops)
  double memory_after = 0.0;  ///< configuration size after this step
};

/// An ordered operation sequence taking `from` to `to`.
struct DeploymentPlan {
  std::vector<PlanStep> steps;
  double budget = 0.0;
  double initial_memory = 0.0;
  double final_memory = 0.0;

  /// Multi-line rendering: "1. CREATE (3,7)  benefit=... mem=...".
  std::string ToString() const;
};

/// Diffs `from` -> `to` and orders the operations (see file comment).
/// All costs and sizes come from `engine`'s caches where warm.
DeploymentPlan BuildDeploymentPlan(costmodel::WhatIfEngine& engine,
                                   const costmodel::IndexConfig& from,
                                   const costmodel::IndexConfig& to,
                                   double budget);

/// Verifies the prefix-budget invariant: every create lands within
/// budget (1 + 1e-9 tolerance) and every drop strictly releases memory.
/// The chaos soak and bench assert this on every emitted plan.
Status ValidatePlanPrefixes(const DeploymentPlan& plan);

}  // namespace idxsel::serve

#endif  // IDXSEL_SERVE_PLAN_H_
