#include "serve/plan.h"

#include <algorithm>

#include "common/float_cmp.h"
#include "serve/delta.h"

namespace idxsel::serve {
namespace {

/// Frequency-weighted solo gain of `k` over the queries that can use it.
/// Every read is served by the engine's caches when warm — right after a
/// selection round these are exactly the values the strategies computed.
double SoloBenefit(costmodel::WhatIfEngine& engine, const costmodel::Index& k) {
  const workload::Workload& w = engine.workload();
  double benefit = 0.0;
  for (const workload::QueryId j : w.queries_with(k.leading())) {
    const double base = engine.BaseCost(j);
    const double with = engine.CostWithIndex(j, k);
    if (with < base) benefit += w.query(j).frequency * (base - with);
  }
  return benefit - engine.MaintenancePenalty(k);
}

struct Op {
  costmodel::Index index;
  double benefit = 0.0;
  double memory = 0.0;
};

}  // namespace

DeploymentPlan BuildDeploymentPlan(costmodel::WhatIfEngine& engine,
                                   const costmodel::IndexConfig& from,
                                   const costmodel::IndexConfig& to,
                                   double budget) {
  DeploymentPlan plan;
  plan.budget = budget;
  plan.initial_memory = engine.ConfigMemory(from);

  std::vector<Op> creates, drops;
  for (const costmodel::Index& k : to.indexes()) {
    if (!from.Contains(k)) {
      creates.push_back({k, SoloBenefit(engine, k), engine.IndexMemory(k)});
    }
  }
  for (const costmodel::Index& k : from.indexes()) {
    if (!to.Contains(k)) {
      drops.push_back({k, SoloBenefit(engine, k), engine.IndexMemory(k)});
    }
  }
  // Most beneficial creates first; least beneficial drops first (ties on
  // the lexicographic index order so the plan is deterministic).
  std::sort(creates.begin(), creates.end(), [](const Op& a, const Op& b) {
    if (!ExactlyEqual(a.benefit, b.benefit)) return a.benefit > b.benefit;
    return a.index < b.index;
  });
  std::sort(drops.begin(), drops.end(), [](const Op& a, const Op& b) {
    if (!ExactlyEqual(a.benefit, b.benefit)) return a.benefit < b.benefit;
    return a.index < b.index;
  });

  double memory = plan.initial_memory;
  const double limit = budget * (1.0 + 1e-9);
  size_t next_drop = 0;
  auto emit_drop = [&](const Op& op) {
    memory -= op.memory;
    plan.steps.push_back({false, op.index, op.benefit, -op.memory, memory});
  };
  for (const Op& op : creates) {
    // Make room first: the target configuration fits the budget, so
    // dropping enough retired indexes always lets the create land.
    while (memory + op.memory > limit && next_drop < drops.size()) {
      emit_drop(drops[next_drop++]);
    }
    memory += op.memory;
    plan.steps.push_back({true, op.index, op.benefit, op.memory, memory});
  }
  while (next_drop < drops.size()) emit_drop(drops[next_drop++]);
  plan.final_memory = memory;
  return plan;
}

Status ValidatePlanPrefixes(const DeploymentPlan& plan) {
  const double limit = plan.budget * (1.0 + 1e-9);
  double memory = plan.initial_memory;
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const PlanStep& step = plan.steps[i];
    if (step.create) {
      if (step.memory_after > limit) {
        return Status::Infeasible(
            "plan prefix " + std::to_string(i + 1) + " exceeds budget: " +
            FormatExactDouble(step.memory_after) + " > " +
            FormatExactDouble(plan.budget));
      }
    } else if (step.memory_after > memory) {
      return Status::Internal("plan drop " + std::to_string(i + 1) +
                              " increased memory");
    }
    memory = step.memory_after;
  }
  if (plan.final_memory > limit) {
    return Status::Infeasible("plan final memory exceeds budget");
  }
  return Status::Ok();
}

std::string DeploymentPlan::ToString() const {
  std::string out = "deployment plan: " + std::to_string(steps.size()) +
                    " steps, budget " + FormatExactDouble(budget) +
                    ", memory " + FormatExactDouble(initial_memory) + " -> " +
                    FormatExactDouble(final_memory) + "\n";
  for (size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& step = steps[i];
    out += std::to_string(i + 1);
    out += step.create ? ". CREATE " : ". DROP   ";
    out += step.index.ToString();
    out += "  benefit=" + FormatExactDouble(step.benefit);
    out += " mem_after=" + FormatExactDouble(step.memory_after);
    out += "\n";
  }
  return out;
}

}  // namespace idxsel::serve
