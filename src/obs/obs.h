// idxsel::obs — unified tracing, metrics, and profiling layer.
//
// Umbrella header plus the compile-time site macros. Instrumentation in
// the selection pipeline goes through these macros so that configuring
// with -DIDXSEL_ENABLE_OBS=OFF (which leaves the IDXSEL_OBS preprocessor
// symbol undefined) removes every site entirely — the observability
// library itself still builds, so RunReport-carrying APIs keep their
// shape and merely return empty reports.
//
//   IDXSEL_OBS_SPAN(var, category, name)   RAII span (see obs::Span)
//   IDXSEL_OBS_ONLY(...)                   passthrough statement(s)
//
// See doc/observability.md for naming conventions, JSON schemas, and how
// to open a captured trace in Chrome.

#ifndef IDXSEL_OBS_OBS_H_
#define IDXSEL_OBS_OBS_H_

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/resource.h"
#include "obs/runtime.h"
#include "obs/trace.h"

#if defined(IDXSEL_OBS)
#define IDXSEL_OBS_SPAN(var, category, name) \
  ::idxsel::obs::Span var((category), (name))
#define IDXSEL_OBS_ONLY(...) __VA_ARGS__
#else
#define IDXSEL_OBS_SPAN(var, category, name) \
  do {                                       \
  } while (false)
#define IDXSEL_OBS_ONLY(...)
#endif

#endif  // IDXSEL_OBS_OBS_H_
