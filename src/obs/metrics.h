// Metrics primitives and the process-wide registry.
//
// Counter / Gauge are single relaxed atomics; Histogram is a fixed array of
// power-of-two ("log-scale") atomic buckets with O(1) lock-free Record().
// All three are safe to hammer from any thread and never allocate after
// construction. The Registry interns metrics by name (stable pointers for
// the object's lifetime) and serializes everything to JSON; hot paths
// resolve their metric pointers once and increment through them.
//
// Naming convention (see doc/observability.md): lowercase dotted paths
// "idxsel.<component>.<metric>", histograms and durations suffixed "_ns".

#ifndef IDXSEL_OBS_METRICS_H_
#define IDXSEL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace idxsel::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (cache sizes, last-run values, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-scale latency/size histogram over uint64 values.
///
/// Bucket b holds the values whose bit width is b: bucket 0 is exactly
/// {0}, bucket b >= 1 covers [2^(b-1), 2^b). Percentiles interpolate
/// linearly inside the hit bucket, so any reported quantile q satisfies
/// BucketLowerBound(b) <= q <= BucketUpperBound(b) for the bucket b that
/// contains the true quantile — a bounded 2x relative error, which is
/// plenty for latency tails while keeping Record() a single atomic add.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;  // bit widths 0..64

  void Record(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    AtomicMin(min_, value);
    AtomicMax(max_, value);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  uint64_t Min() const {
    const uint64_t v = min_.load(std::memory_order_relaxed);
    return v == kEmptyMin ? 0 : v;
  }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const {
    const uint64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
  }

  /// Approximate p-th percentile, p in [0, 100]; 0 when empty. p=0 returns
  /// the lower bound of the first occupied bucket, p=100 the upper bound of
  /// the last occupied one (clamped to the exact observed max).
  double Percentile(double p) const;

  void Reset();

  /// Bucket index a value lands in (== std::bit_width(value)).
  static size_t BucketOf(uint64_t value) {
    return static_cast<size_t>(std::bit_width(value));
  }
  /// Smallest value of bucket b.
  static uint64_t BucketLowerBound(size_t b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }
  /// Smallest value *above* bucket b (saturates at UINT64_MAX).
  static uint64_t BucketUpperBound(size_t b) {
    if (b == 0) return 1;
    if (b >= 64) return UINT64_MAX;
    return uint64_t{1} << b;
  }

 private:
  static constexpr uint64_t kEmptyMin = UINT64_MAX;

  static void AtomicMin(std::atomic<uint64_t>& slot, uint64_t v) {
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<uint64_t>& slot, uint64_t v) {
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{kEmptyMin};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time view of one histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Point-in-time view of a whole registry; also used for run-report deltas.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// {"schema":"idxsel.metrics.v1","counters":{...},...}.
  std::string ToJson() const;
};

/// after - before: counter and histogram count/sum deltas (entries whose
/// delta is zero are dropped), gauges and histogram shape taken from
/// `after` (instantaneous values have no meaningful difference).
MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

/// Thread-safe name -> metric registry. Get* interns on first use and
/// returns a pointer that stays valid for the registry's lifetime, so hot
/// paths pay the map lookup once. Counters, gauges and histograms live in
/// separate namespaces.
class Registry {
 public:
  /// The process-wide default registry used by all built-in
  /// instrumentation.
  static Registry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }

  /// Zeroes every counter and histogram. Gauges are left untouched: they
  /// mirror live state (e.g. what-if cache sizes) that a stats reset must
  /// not desynchronize.
  void ResetCountersAndHistograms();

 private:
  mutable common::Mutex mu_;
  // Pointees are interned for the registry's lifetime (hot paths hold
  // them lock-free); the maps themselves only mutate under mu_.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      IDXSEL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      IDXSEL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      IDXSEL_GUARDED_BY(mu_);
};

}  // namespace idxsel::obs

#endif  // IDXSEL_OBS_METRICS_H_
