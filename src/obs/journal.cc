#include "obs/journal.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace idxsel::obs {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
}

/// %.17g round-trips every finite double; non-finite values are not valid
/// JSON numbers, so they render as quoted strings — the report tool and
/// the journal tests parse both forms.
void AppendDouble(std::string* out, double v) {
  if (std::isnan(v)) {
    *out += "\"nan\"";
  } else if (std::isinf(v)) {
    *out += v > 0 ? "\"inf\"" : "\"-inf\"";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out += buf;
  }
}

void AppendField(std::string* out, const char* key, const std::string& v) {
  *out += '"';
  *out += key;
  *out += "\":\"";
  AppendEscaped(out, v);
  *out += '"';
}

void AppendField(std::string* out, const char* key, double v) {
  *out += '"';
  *out += key;
  *out += "\":";
  AppendDouble(out, v);
}

void AppendField(std::string* out, const char* key, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += '"';
  *out += key;
  *out += "\":";
  *out += buf;
}

#if defined(IDXSEL_OBS)
void BridgeSink(const telemetry::JournalEvent& event) {
  Journal::Default().Append(event);
}
#endif

std::atomic<bool>& JournalEnabledFlag() {
  static std::atomic<bool> flag{[] {
#if defined(IDXSEL_OBS)
    const char* v = std::getenv("IDXSEL_JOURNAL");
    const bool on = v != nullptr && v[0] == '1';
    if (on) telemetry::SetJournalSink(&BridgeSink);
    return on;
#else
    return false;
#endif
  }()};
  return flag;
}

}  // namespace

std::string JournalRecord::ToJsonl() const {
  std::string out = "{";
  AppendField(&out, "seq", seq);
  out += ',';
  AppendField(&out, "strategy", strategy);
  out += ',';
  AppendField(&out, "action", action);
  out += ',';
  AppendField(&out, "round", round);
  out += ',';
  AppendField(&out, "winner", winner);
  out += ',';
  AppendField(&out, "winner_ratio", winner_ratio);
  out += ',';
  AppendField(&out, "margin", margin);
  out += ',';
  AppendField(&out, "objective_before", objective_before);
  out += ',';
  AppendField(&out, "objective_after", objective_after);
  out += ',';
  AppendField(&out, "memory_after", memory_after);
  out += ',';
  AppendField(&out, "sanitized_whatif", sanitized_whatif);
  out += ",\"candidates\":[";
  for (size_t i = 0; i < candidates.size(); ++i) {
    const JournalCandidate& c = candidates[i];
    if (i != 0) out += ',';
    out += '{';
    AppendField(&out, "index", c.index);
    out += ',';
    AppendField(&out, "reject", c.reject);
    out += ',';
    AppendField(&out, "benefit", c.benefit);
    out += ',';
    AppendField(&out, "memory_delta", c.memory_delta);
    out += ',';
    AppendField(&out, "ratio", c.ratio);
    out += '}';
  }
  out += ']';
  if (!note.empty()) {
    out += ',';
    AppendField(&out, "note", note);
  }
  out += '}';
  return out;
}

std::string JournalToJsonl(const std::vector<JournalRecord>& records) {
  std::string out;
  for (const JournalRecord& r : records) {
    out += r.ToJsonl();
    out += '\n';
  }
  return out;
}

bool JournalEnabled() {
  return JournalEnabledFlag().load(std::memory_order_relaxed);
}

void SetJournalEnabled(bool on) {
#if defined(IDXSEL_OBS)
  JournalEnabledFlag().store(on, std::memory_order_relaxed);
  telemetry::SetJournalSink(on ? &BridgeSink : nullptr);
#else
  (void)on;  // obs-off builds never install a sink; journals stay empty.
#endif
}

Journal& Journal::Default() {
  static Journal* journal = new Journal();  // leaked: outlives every sink call
  return *journal;
}

void Journal::Append(const telemetry::JournalEvent& event) {
  JournalRecord record;
  record.strategy = event.strategy != nullptr ? event.strategy : "";
  record.action = event.action != nullptr ? event.action : "";
  record.round = event.round;
  record.winner = event.winner != nullptr ? event.winner : "";
  record.winner_ratio = event.winner_ratio;
  record.margin = event.margin;
  record.objective_before = event.objective_before;
  record.objective_after = event.objective_after;
  record.memory_after = event.memory_after;
  record.sanitized_whatif = event.sanitized_whatif;
  record.note = event.note != nullptr ? event.note : "";
  record.candidates.reserve(event.num_candidates);
  for (size_t i = 0; i < event.num_candidates; ++i) {
    const telemetry::JournalCandidate& c = event.candidates[i];
    JournalCandidate owned;
    owned.index = c.index != nullptr ? c.index : "";
    owned.reject = c.reject != nullptr ? c.reject : "";
    owned.benefit = c.benefit;
    owned.memory_delta = c.memory_delta;
    owned.ratio = c.ratio;
    record.candidates.push_back(std::move(owned));
  }

  common::MutexLock lock(&mu_);
  if (records_.size() >= kMaxRecords) {
    ++dropped_;
    return;
  }
  records_.push_back(std::move(record));
}

size_t Journal::size() const {
  common::MutexLock lock(&mu_);
  return records_.size();
}

uint64_t Journal::dropped() const {
  common::MutexLock lock(&mu_);
  return dropped_;
}

std::vector<JournalRecord> Journal::SnapshotSince(size_t mark) const {
  common::MutexLock lock(&mu_);
  std::vector<JournalRecord> out;
  if (mark >= records_.size()) return out;
  out.assign(records_.begin() + static_cast<ptrdiff_t>(mark),
             records_.end());
  for (size_t i = 0; i < out.size(); ++i) out[i].seq = i;
  return out;
}

void Journal::Clear() {
  common::MutexLock lock(&mu_);
  records_.clear();
  dropped_ = 0;
}

JournalScope::JournalScope(std::vector<std::string> lane_order)
    : lane_order_(std::move(lane_order)) {
#if defined(IDXSEL_OBS)
  if (JournalEnabled()) telemetry::SetJournalSink(&BridgeSink);
#endif
  mark_ = Journal::Default().size();
}

void JournalScope::SetLaneOrder(std::vector<std::string> lane_order) {
  lane_order_ = std::move(lane_order);
}

std::vector<JournalRecord> JournalScope::Finish() {
  std::vector<JournalRecord> records =
      Journal::Default().SnapshotSince(mark_);
  const auto ordinal = [&](const JournalRecord& r) {
    for (size_t i = 0; i < lane_order_.size(); ++i) {
      if (lane_order_[i] == r.strategy) return i;
    }
    return lane_order_.size();
  };
  std::stable_sort(records.begin(), records.end(),
                   [&](const JournalRecord& a, const JournalRecord& b) {
                     return ordinal(a) < ordinal(b);
                   });
  for (size_t i = 0; i < records.size(); ++i) records[i].seq = i;
  return records;
}

}  // namespace idxsel::obs
