// Selection journal — decision provenance for every strategy run.
//
// The consuming half of the telemetry journal bridge
// (common/telemetry.h): obs installs a sink that copies each emitted
// telemetry::JournalEvent into an owned JournalRecord inside the bounded
// process-wide Journal buffer. JournalScope brackets one advisor run and
// returns the records appended while it was open, re-ordered into the
// caller-supplied lane order so that concurrently-racing portfolio lanes
// always serialize identically — the journal is held to the kernel's bar:
// byte-identical at any thread count, kernel on or off. Records carry no
// timestamps and no arrival-order sequence numbers for exactly that
// reason; `seq` is assigned after ordering.
//
// Runtime gate: the journal starts disabled (records are allocation-heavy
// and would distort bench numbers) and is enabled with the
// IDXSEL_JOURNAL=1 environment variable or SetJournalEnabled(true).
// Sidecar format: one record per line, schema idxsel.journal.v1
// (doc/observability.md §journal).

#ifndef IDXSEL_OBS_JOURNAL_H_
#define IDXSEL_OBS_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/telemetry.h"
#include "common/thread_annotations.h"

namespace idxsel::obs {

/// Owned copy of telemetry::JournalCandidate.
struct JournalCandidate {
  std::string index;       ///< canonical index label, e.g. "(3,7)"
  std::string reject;      ///< empty for the winner; else the reason
  double benefit = 0.0;
  double memory_delta = 0.0;
  double ratio = 0.0;
};

/// Owned copy of one telemetry::JournalEvent.
struct JournalRecord {
  uint64_t seq = 0;  ///< 0-based position after lane ordering (assigned by
                     ///< JournalScope::Finish / Journal::Snapshot)
  std::string strategy;
  std::string action;
  uint64_t round = 0;
  std::string winner;  ///< empty when the event picked nothing
  double winner_ratio = 0.0;
  double margin = 0.0;
  double objective_before = 0.0;
  double objective_after = 0.0;
  double memory_after = 0.0;
  uint64_t sanitized_whatif = 0;
  std::vector<JournalCandidate> candidates;
  std::string note;

  /// One-line JSON object (no trailing newline). Doubles render with
  /// %.17g; non-finite values render as the strings "inf"/"-inf"/"nan".
  std::string ToJsonl() const;
};

/// Full sidecar body: one ToJsonl() line per record, each '\n'-terminated.
std::string JournalToJsonl(const std::vector<JournalRecord>& records);

/// True iff emitted events are being recorded. Always false in
/// -DIDXSEL_ENABLE_OBS=OFF builds: the types keep their shape, but no
/// sink is ever installed, so journals stay empty and
/// Recommendation::Explain reports observability as disabled.
bool JournalEnabled();

/// Installs (on) or removes (off) the telemetry journal sink. Safe to
/// call repeatedly; idempotent. No-op in IDXSEL_ENABLE_OBS=OFF builds.
void SetJournalEnabled(bool on);

/// Process-wide bounded record buffer fed by the telemetry sink.
class Journal {
 public:
  /// Records are dropped (and counted) beyond this many per process
  /// between Clear() calls; a run that hits it is pathological.
  static constexpr size_t kMaxRecords = 1u << 20;

  static Journal& Default();

  /// Copies one bridge event into owned storage. Thread-safe.
  void Append(const telemetry::JournalEvent& event);

  size_t size() const;
  uint64_t dropped() const;

  /// Copies out records [mark, size()), `seq` assigned 0..n-1 in buffer
  /// order. Use JournalScope for lane-order-stable extraction.
  std::vector<JournalRecord> SnapshotSince(size_t mark) const;

  /// Empties the buffer and resets the drop counter.
  void Clear();

 private:
  mutable common::Mutex mu_;
  std::vector<JournalRecord> records_ IDXSEL_GUARDED_BY(mu_);
  uint64_t dropped_ IDXSEL_GUARDED_BY(mu_) = 0;
};

/// Brackets one advisor/strategy run: construction marks the default
/// journal (and installs the sink if JournalEnabled()); Finish() returns
/// the records appended since, stable-sorted by the position of each
/// record's strategy in `lane_order` (records whose strategy is not
/// listed sort after all listed lanes, preserving their relative order —
/// advisor-level records land there by construction). Within one lane,
/// emission order is preserved: strategies emit serially from their own
/// lane, so per-lane order is deterministic even while lanes race.
class JournalScope {
 public:
  explicit JournalScope(std::vector<std::string> lane_order = {});

  /// Replaces the lane order (the advisor resolves its race list after
  /// opening the scope). Call before Finish().
  void SetLaneOrder(std::vector<std::string> lane_order);

  /// Ends the scope and returns the lane-ordered records with `seq`
  /// assigned 0..n-1. Call at most once.
  std::vector<JournalRecord> Finish();

 private:
  std::vector<std::string> lane_order_;
  size_t mark_ = 0;
};

}  // namespace idxsel::obs

#endif  // IDXSEL_OBS_JOURNAL_H_
