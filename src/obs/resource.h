// Process resource sampling for the perf-trajectory harness.
//
// Thin header-only wrapper over getrusage(RUSAGE_SELF): SampleResources()
// returns a point-in-time ResourceUsage, ResourceSampler brackets a
// measured region and reports CPU-time deltas plus the peak RSS observed
// by the kernel so far (ru_maxrss is a high-water mark, not a level — the
// "delta" of a high-water mark is simply its final value). On platforms
// without <sys/resource.h> everything compiles and returns zeros, so the
// bench harnesses stay portable.
//
// Deliberately timestamp-free output consumers: peak RSS and CPU seconds
// feed BENCH_trajectory.json (schema idxsel.bench_trajectory.v1), never
// the selection journal, which must stay byte-identical across machines.

#ifndef IDXSEL_OBS_RESOURCE_H_
#define IDXSEL_OBS_RESOURCE_H_

#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#define IDXSEL_OBS_HAS_RUSAGE 1
#include <sys/resource.h>
#endif

namespace idxsel::obs {

/// One getrusage(RUSAGE_SELF) sample, normalized.
struct ResourceUsage {
  double user_seconds = 0.0;    ///< ru_utime
  double system_seconds = 0.0;  ///< ru_stime
  int64_t peak_rss_kb = 0;      ///< ru_maxrss, kilobytes (high-water mark)
  int64_t minor_faults = 0;     ///< ru_minflt
  int64_t major_faults = 0;     ///< ru_majflt
  int64_t voluntary_switches = 0;    ///< ru_nvcsw
  int64_t involuntary_switches = 0;  ///< ru_nivcsw
};

inline ResourceUsage SampleResources() {
  ResourceUsage usage;
#if defined(IDXSEL_OBS_HAS_RUSAGE)
  struct rusage ru = {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    const auto seconds = [](const timeval& tv) {
      return static_cast<double>(tv.tv_sec) +
             static_cast<double>(tv.tv_usec) * 1e-6;
    };
    usage.user_seconds = seconds(ru.ru_utime);
    usage.system_seconds = seconds(ru.ru_stime);
#if defined(__APPLE__)
    usage.peak_rss_kb = static_cast<int64_t>(ru.ru_maxrss) / 1024;  // bytes
#else
    usage.peak_rss_kb = static_cast<int64_t>(ru.ru_maxrss);  // kilobytes
#endif
    usage.minor_faults = static_cast<int64_t>(ru.ru_minflt);
    usage.major_faults = static_cast<int64_t>(ru.ru_majflt);
    usage.voluntary_switches = static_cast<int64_t>(ru.ru_nvcsw);
    usage.involuntary_switches = static_cast<int64_t>(ru.ru_nivcsw);
  }
#endif
  return usage;
}

/// Brackets a measured region: construction samples, Delta() samples again
/// and returns the difference for the accumulating fields — peak_rss_kb is
/// reported as the *current* high-water mark, not a difference.
class ResourceSampler {
 public:
  ResourceSampler() : begin_(SampleResources()) {}

  ResourceUsage Delta() const {
    const ResourceUsage now = SampleResources();
    ResourceUsage delta;
    delta.user_seconds = now.user_seconds - begin_.user_seconds;
    delta.system_seconds = now.system_seconds - begin_.system_seconds;
    delta.peak_rss_kb = now.peak_rss_kb;
    delta.minor_faults = now.minor_faults - begin_.minor_faults;
    delta.major_faults = now.major_faults - begin_.major_faults;
    delta.voluntary_switches =
        now.voluntary_switches - begin_.voluntary_switches;
    delta.involuntary_switches =
        now.involuntary_switches - begin_.involuntary_switches;
    return delta;
  }

 private:
  ResourceUsage begin_;
};

}  // namespace idxsel::obs

#endif  // IDXSEL_OBS_RESOURCE_H_
