// Runtime on/off switch and the monotonic clock of idxsel::obs.
//
// Two independent gates keep observability free when unwanted:
//   * compile time — the build defines IDXSEL_OBS (CMake option
//     IDXSEL_ENABLE_OBS, default ON); with the option OFF every
//     instrumentation site in the library compiles to nothing (see
//     obs/obs.h for the site macros).
//   * run time — Enabled() starts false (or true when the IDXSEL_OBS
//     environment variable is "1") and is flipped with SetEnabled().
//     While disabled, spans read one relaxed atomic and touch neither the
//     clock nor any allocation; counters and gauges stay live because they
//     are as cheap as the plain struct fields they replaced.

#ifndef IDXSEL_OBS_RUNTIME_H_
#define IDXSEL_OBS_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>

namespace idxsel::obs {

namespace internal {

inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{[] {
    const char* v = std::getenv("IDXSEL_OBS");
    return v != nullptr && v[0] == '1';
  }()};
  return flag;
}

}  // namespace internal

/// True iff span tracing and latency histograms are active.
inline bool Enabled() {
  return internal::EnabledFlag().load(std::memory_order_relaxed);
}

/// Turns span tracing and latency histograms on or off at run time.
inline void SetEnabled(bool on) {
  internal::EnabledFlag().store(on, std::memory_order_relaxed);
}

/// Monotonic timestamp in nanoseconds (steady-clock epoch; only meaningful
/// as differences and for ordering within one process).
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Small dense id of the calling thread (1, 2, ... in first-use order);
/// stable for the thread's lifetime. Used as the Chrome-trace tid.
inline uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace idxsel::obs

#endif  // IDXSEL_OBS_RUNTIME_H_
