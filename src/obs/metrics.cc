#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/telemetry.h"

namespace idxsel::obs {
namespace {

/// Escapes a string for embedding in a JSON string literal. Metric names
/// are plain identifiers, but strategy names ("H6 (Algorithm 1)") pass
/// through here too, so cover the general case.
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatJsonDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

double Histogram::Percentile(double p) const {
  p = std::clamp(p, 0.0, 100.0);
  std::array<uint64_t, kNumBuckets> counts;
  uint64_t total = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;

  const double target = (p / 100.0) * static_cast<double>(total);
  double cum = 0.0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (counts[b] == 0) continue;
    const double in_bucket = static_cast<double>(counts[b]);
    if (cum + in_bucket >= target) {
      const double lower = static_cast<double>(BucketLowerBound(b));
      const double upper = static_cast<double>(BucketUpperBound(b));
      const double frac = std::clamp((target - cum) / in_bucket, 0.0, 1.0);
      const double value = lower + frac * (upper - lower);
      // The exact extremes are tracked; never report beyond them.
      return std::clamp(value, static_cast<double>(Min()),
                        static_cast<double>(Max()));
    }
    cum += in_bucket;
  }
  return static_cast<double>(Max());
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(kEmptyMin, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"schema\": \"idxsel.metrics.v1\",\n";
  char buf[64];

  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out += first ? "\n" : ",\n";
    out += "    \"" + EscapeJson(name) + "\": " + buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out += first ? "\n" : ",\n";
    out += "    \"" + EscapeJson(name) + "\": " + buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + EscapeJson(name) + "\": {";
    std::snprintf(buf, sizeof(buf), "\"count\": %" PRIu64 ", ", h.count);
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"sum\": %" PRIu64 ", ", h.sum);
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"min\": %" PRIu64 ", ", h.min);
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"max\": %" PRIu64 ", ", h.max);
    out += buf;
    out += "\"mean\": " + FormatJsonDouble(h.mean) + ", ";
    out += "\"p50\": " + FormatJsonDouble(h.p50) + ", ";
    out += "\"p95\": " + FormatJsonDouble(h.p95) + ", ";
    out += "\"p99\": " + FormatJsonDouble(h.p99) + "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    const uint64_t base = it == before.counters.end() ? 0 : it->second;
    if (value > base) delta.counters[name] = value - base;
  }
  delta.gauges = after.gauges;
  for (const auto& [name, h] : after.histograms) {
    const auto it = before.histograms.find(name);
    HistogramSnapshot d = h;  // shape (min/max/percentiles) from `after`
    if (it != before.histograms.end()) {
      d.count = h.count >= it->second.count ? h.count - it->second.count : 0;
      d.sum = h.sum >= it->second.sum ? h.sum - it->second.sum : 0;
    }
    if (d.count > 0) delta.histograms[name] = d;
  }
  return delta;
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();  // leaked: outlive everything
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  common::MutexLock lock(&mu_);
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  common::MutexLock lock(&mu_);
  auto [it, inserted] = gauges_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Gauge>();
  return it->second.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  common::MutexLock lock(&mu_);
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Histogram>();
  return it->second.get();
}

MetricsSnapshot Registry::Snapshot() const {
  common::MutexLock lock(&mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  // Bridge the dependency-free telemetry slots (common/telemetry.h): layers
  // below obs in the DAG (exec) publish through plain atomics instead of
  // registry pointers; snapshots surface them under their registry names.
  for (size_t s = 0; s < telemetry::kSlotCount; ++s) {
    const auto slot = static_cast<telemetry::Slot>(s);
    const int64_t value = telemetry::Value(slot);
    if (telemetry::KindOf(slot) == telemetry::SlotKind::kGauge) {
      snapshot.gauges[telemetry::SlotName(slot)] = value;
    } else {
      snapshot.counters[telemetry::SlotName(slot)] =
          static_cast<uint64_t>(value);
    }
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    h.min = histogram->Min();
    h.max = histogram->Max();
    h.mean = histogram->Mean();
    h.p50 = histogram->Percentile(50.0);
    h.p95 = histogram->Percentile(95.0);
    h.p99 = histogram->Percentile(99.0);
    snapshot.histograms[name] = h;
  }
  return snapshot;
}

void Registry::ResetCountersAndHistograms() {
  common::MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  // Bridged slots are counters to their consumers; reset them in lockstep.
  telemetry::ResetAll();
}

}  // namespace idxsel::obs
