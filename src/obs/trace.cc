#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace idxsel::obs {

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();  // leaked: outlive everything
  return *tracer;
}

void Tracer::Record(const SpanRecord& record) {
  common::MutexLock lock(&mu_);
  if (records_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  records_.push_back(record);
}

size_t Tracer::size() const {
  common::MutexLock lock(&mu_);
  return records_.size();
}

std::vector<SpanRecord> Tracer::SnapshotSince(size_t mark) const {
  common::MutexLock lock(&mu_);
  if (mark >= records_.size()) return {};
  return std::vector<SpanRecord>(
      records_.begin() + static_cast<ptrdiff_t>(mark), records_.end());
}

void Tracer::Clear() {
  common::MutexLock lock(&mu_);
  records_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::set_capacity(size_t capacity) {
  common::MutexLock lock(&mu_);
  capacity_ = capacity;
}

std::string Tracer::ToChromeJson(const std::vector<SpanRecord>& records) {
  // Chrome/Perfetto ignore unknown top-level keys, so the schema tag can
  // sit where our other documents put it.
  std::string out =
      "{\"schema\": \"idxsel.trace.v1\", \"displayTimeUnit\": \"ms\", "
      "\"traceEvents\": [";
  char buf[160];
  bool first = true;
  for (const SpanRecord& r : records) {
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
                  r.name, r.category,
                  static_cast<double>(r.start_ns) / 1e3,
                  static_cast<double>(r.duration_ns) / 1e3, r.thread_id);
    out += buf;
    if (r.arg_name != nullptr) {
      std::snprintf(buf, sizeof(buf), ", \"args\": {\"%s\": %.6g}",
                    r.arg_name, r.arg_value);
      out += buf;
    }
    out += "}";
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

std::string Tracer::RenderTree(const std::vector<SpanRecord>& records) {
  // Spans are recorded at *completion*; re-ordering by (thread, start)
  // recovers the call order, and the recorded depth gives the indent.
  std::vector<const SpanRecord*> sorted;
  sorted.reserve(records.size());
  for (const SpanRecord& r : records) sorted.push_back(&r);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     if (a->thread_id != b->thread_id) {
                       return a->thread_id < b->thread_id;
                     }
                     if (a->start_ns != b->start_ns) {
                       return a->start_ns < b->start_ns;
                     }
                     return a->depth < b->depth;
                   });

  std::string out;
  char buf[160];
  uint32_t current_thread = 0;
  bool multi_thread = false;
  for (const SpanRecord* r : sorted) {
    if (r->thread_id != current_thread) {
      multi_thread = current_thread != 0;
      current_thread = r->thread_id;
      if (multi_thread) {
        std::snprintf(buf, sizeof(buf), "[thread %u]\n", current_thread);
        out += buf;
      }
    }
    for (uint32_t d = 0; d < r->depth; ++d) out += "  ";
    std::snprintf(buf, sizeof(buf), "%-*s %10.3f ms", 36 - std::min(
                      static_cast<int>(r->depth) * 2, 20),
                  r->name, static_cast<double>(r->duration_ns) / 1e6);
    out += buf;
    if (r->arg_name != nullptr) {
      std::snprintf(buf, sizeof(buf), "  (%s=%.6g)", r->arg_name,
                    r->arg_value);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace idxsel::obs
