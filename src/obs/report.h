// Per-run aggregation: RunScope brackets one advisor/strategy invocation
// and produces a RunReport combining the metric deltas and the spans
// recorded while it was open — the "self-describing run" object the
// benches write next to their CSVs and Recommendation carries back to
// callers.

#ifndef IDXSEL_OBS_REPORT_H_
#define IDXSEL_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace idxsel::obs {

/// Everything observed during one bracketed run.
struct RunReport {
  std::string name;           ///< Strategy / run label.
  double wall_seconds = 0.0;  ///< RunScope open -> Finish().
  MetricsSnapshot metrics;    ///< Counter/histogram deltas, gauge values.
  std::vector<SpanRecord> spans;  ///< Spans finished during the run.

  /// Metrics JSON (schema idxsel.metrics.v1).
  std::string MetricsJson() const { return metrics.ToJson(); }
  /// Chrome trace_event JSON of the run's spans (schema idxsel.trace.v1).
  std::string TraceJson() const { return Tracer::ToChromeJson(spans); }
  /// Single combined document (schema idxsel.report.v1).
  std::string ToJson() const;

  /// Human-readable digest: wall time, what-if call/hit-rate line, key
  /// counters, and the span tree ("wall time per phase").
  std::string Summary() const;
};

/// Brackets a run: construction snapshots the default registry and marks
/// the default tracer; Finish() returns the delta as a RunReport. Cold
/// path — two registry snapshots per run, nothing on any hot path.
class RunScope {
 public:
  explicit RunScope(std::string name);

  /// Ends the run and builds the report. Call at most once.
  RunReport Finish();

 private:
  std::string name_;
  uint64_t start_ns_ = 0;
  size_t trace_mark_ = 0;
  MetricsSnapshot before_;
};

}  // namespace idxsel::obs

#endif  // IDXSEL_OBS_REPORT_H_
