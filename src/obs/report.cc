#include "obs/report.h"

#include <cinttypes>
#include <cstdio>

namespace idxsel::obs {
namespace {

std::string Indent(const std::string& block, const char* prefix) {
  std::string out;
  size_t pos = 0;
  while (pos < block.size()) {
    size_t end = block.find('\n', pos);
    if (end == std::string::npos) end = block.size();
    out += prefix;
    out.append(block, pos, end - pos);
    out += '\n';
    pos = end + 1;
  }
  return out;
}

}  // namespace

std::string RunReport::ToJson() const {
  char buf[64];
  std::string out = "{\n\"schema\": \"idxsel.report.v1\",\n\"name\": \"";
  for (const char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\",\n";
  std::snprintf(buf, sizeof(buf), "\"wall_seconds\": %.6f,\n", wall_seconds);
  out += buf;
  out += "\"metrics\": " + MetricsJson();
  out += ",\n\"trace\": " + TraceJson();
  out += "}\n";
  return out;
}

std::string RunReport::Summary() const {
  char buf[160];
  std::string out = "=== run report: " + name + " ===\n";
  std::snprintf(buf, sizeof(buf), "wall time:     %.3f ms\n",
                wall_seconds * 1e3);
  out += buf;

  const auto counter = [&](const char* key) -> uint64_t {
    const auto it = metrics.counters.find(key);
    return it == metrics.counters.end() ? 0 : it->second;
  };
  const uint64_t calls = counter("idxsel.whatif.calls");
  const uint64_t hits = counter("idxsel.whatif.cache_hits");
  if (calls + hits > 0) {
    std::snprintf(buf, sizeof(buf),
                  "what-if calls: %" PRIu64 " (%" PRIu64
                  " cache hits, %.1f%% hit rate)\n",
                  calls, hits,
                  100.0 * static_cast<double>(hits) /
                      static_cast<double>(calls + hits));
    out += buf;
  }
  if (!metrics.counters.empty()) {
    out += "counters:\n";
    for (const auto& [key, value] : metrics.counters) {
      std::snprintf(buf, sizeof(buf), "  %-40s %12" PRIu64 "\n", key.c_str(),
                    value);
      out += buf;
    }
  }
  if (!spans.empty()) {
    out += "phases:\n";
    out += Indent(Tracer::RenderTree(spans), "  ");
  }
  return out;
}

RunScope::RunScope(std::string name)
    : name_(std::move(name)),
      start_ns_(MonotonicNanos()),
      trace_mark_(Tracer::Default().size()),
      before_(Registry::Default().Snapshot()) {}

RunReport RunScope::Finish() {
  RunReport report;
  report.name = std::move(name_);
  report.wall_seconds =
      static_cast<double>(MonotonicNanos() - start_ns_) / 1e9;
  report.metrics = SnapshotDelta(before_, Registry::Default().Snapshot());
  report.spans = Tracer::Default().SnapshotSince(trace_mark_);
  return report;
}

}  // namespace idxsel::obs
