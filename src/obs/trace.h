// Span tracing: RAII scopes recorded into a thread-safe sink, exportable
// as Chrome trace_event JSON (chrome://tracing, https://ui.perfetto.dev)
// and as a human-readable tree.
//
// Spans carry only static-storage strings (category, name, arg name) so
// opening and closing a span never allocates; the sink appends one fixed
// size record per finished span under a mutex. When obs::Enabled() is off,
// a span is one relaxed atomic load and nothing else — no clock reads, no
// record, no allocation.

#ifndef IDXSEL_OBS_TRACE_H_
#define IDXSEL_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/runtime.h"

namespace idxsel::obs {

/// One finished span. `category`/`name`/`arg_name` must point to storage
/// with static lifetime (string literals in practice).
struct SpanRecord {
  const char* category = "";
  const char* name = "";
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t thread_id = 0;
  uint32_t depth = 0;          ///< Nesting depth within the thread.
  const char* arg_name = nullptr;  ///< Optional numeric annotation.
  double arg_value = 0.0;
};

namespace internal {
inline thread_local uint32_t tls_span_depth = 0;
}  // namespace internal

/// Thread-safe sink of finished spans. Bounded: past `capacity` records
/// new spans are counted as dropped instead of stored, so a runaway loop
/// cannot eat the heap.
class Tracer {
 public:
  /// The process-wide default sink used by all built-in instrumentation.
  static Tracer& Default();

  void Record(const SpanRecord& record);

  /// Number of records currently stored; use as a mark for SnapshotSince.
  size_t size() const;

  /// Copies the records appended at or after `mark` (a previous size()).
  std::vector<SpanRecord> SnapshotSince(size_t mark) const;
  std::vector<SpanRecord> Snapshot() const { return SnapshotSince(0); }

  void Clear();
  void set_capacity(size_t capacity);
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Chrome trace_event JSON ("X" complete events, ts/dur in
  /// microseconds): load the file via chrome://tracing or Perfetto.
  static std::string ToChromeJson(const std::vector<SpanRecord>& records);

  /// Indented per-thread tree with durations, for terminals.
  static std::string RenderTree(const std::vector<SpanRecord>& records);

 private:
  mutable common::Mutex mu_;
  std::vector<SpanRecord> records_ IDXSEL_GUARDED_BY(mu_);
  size_t capacity_ IDXSEL_GUARDED_BY(mu_) = 1u << 20;
  std::atomic<uint64_t> dropped_{0};
};

/// RAII span: records [construction, destruction) into Tracer::Default()
/// when obs::Enabled() was true at construction.
class Span {
 public:
  Span(const char* category, const char* name) {
    if (!Enabled()) return;
    active_ = true;
    record_.category = category;
    record_.name = name;
    record_.thread_id = CurrentThreadId();
    record_.depth = internal::tls_span_depth++;
    record_.start_ns = MonotonicNanos();
  }

  ~Span() {
    if (!active_) return;
    record_.duration_ns = MonotonicNanos() - record_.start_ns;
    --internal::tls_span_depth;
    Tracer::Default().Record(record_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches one numeric annotation shown in the trace viewer's args pane
  /// (`name` must have static lifetime).
  void SetArg(const char* name, double value) {
    if (!active_) return;
    record_.arg_name = name;
    record_.arg_value = value;
  }

 private:
  SpanRecord record_;
  bool active_ = false;
};

}  // namespace idxsel::obs

#endif  // IDXSEL_OBS_TRACE_H_
