#include "candidates/candidates.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/float_cmp.h"

namespace idxsel::candidates {
namespace {

/// Orders a combination's attributes ascending by selectivity (most
/// selective first) — the representative permutation used for IC_max and
/// the H*-M sets.
Index RepresentativeOrder(const Workload& workload,
                          std::vector<AttributeId> combo) {
  std::sort(combo.begin(), combo.end(), [&](AttributeId x, AttributeId y) {
    const double sx = workload.attribute(x).selectivity();
    const double sy = workload.attribute(y).selectivity();
    if (sx != sy) return sx < sy;
    return x < y;
  });
  return Index(std::move(combo));
}

/// Enumerates all attribute combinations (as sorted id vectors) of sizes
/// 1..max_width that co-occur in at least one query, with their
/// frequency-weighted occurrence counts sum_{j: combo subset of q_j} b_j.
/// The m-subset enumeration is the combinatorial hot spot of candidate
/// generation, so it polls per emitted subset; expiry truncates the map.
std::unordered_map<Index, double, costmodel::IndexHash>
CollectCooccurringCombos(const Workload& workload, uint32_t max_width,
                         rt::DeadlinePoller& poller) {
  std::unordered_map<Index, double, costmodel::IndexHash> combos;
  // Pre-size from the saturated emission count (sum of binomials per
  // query); duplicates across queries make it an upper bound, and the cap
  // keeps a pathological workload from reserving an absurd table.
  constexpr size_t kReserveCap = size_t{1} << 20;
  size_t emissions = 0;
  for (QueryId j = 0;
       j < workload.num_queries() && emissions < kReserveCap; ++j) {
    const size_t n = workload.query(j).attributes.size();
    const size_t cap = std::min<size_t>(max_width, n);
    size_t binom = 1;
    for (size_t m = 1; m <= cap && emissions < kReserveCap; ++m) {
      binom = binom * (n - m + 1) / m;  // C(n, m), exact stepwise
      emissions += std::min(binom, kReserveCap);
    }
  }
  combos.reserve(std::min(emissions, kReserveCap));
  std::vector<size_t> pick;
  for (QueryId j = 0; j < workload.num_queries(); ++j) {
    if (poller.expired()) break;
    const auto& attrs = workload.query(j).attributes;  // sorted unique
    const double freq = workload.query(j).frequency;
    const size_t width_cap =
        std::min<size_t>(max_width, attrs.size());
    for (size_t m = 1; m <= width_cap && !poller.Expired(); ++m) {
      // Iterate all m-subsets of attrs via combination indices.
      pick.resize(m);
      for (size_t u = 0; u < m; ++u) pick[u] = u;
      while (!poller.Expired()) {
        std::vector<AttributeId> combo(m);
        for (size_t u = 0; u < m; ++u) combo[u] = attrs[pick[u]];
        combos[Index(std::move(combo))] += freq;
        // Advance combination.
        size_t u = m;
        while (u > 0) {
          --u;
          if (pick[u] != u + attrs.size() - m) break;
          if (u == 0) {
            u = m;  // done sentinel
            break;
          }
        }
        if (u == m) break;
        ++pick[u];
        for (size_t v = u + 1; v < m; ++v) pick[v] = pick[v - 1] + 1;
      }
    }
  }
  return combos;
}

double CombinedSelectivity(const Workload& workload, const Index& combo) {
  double s = 1.0;
  for (AttributeId a : combo.attributes()) {
    s *= workload.attribute(a).selectivity();
  }
  return s;
}

}  // namespace

CandidateSet::CandidateSet(std::vector<Index> indexes) {
  for (Index& k : indexes) Add(k);
}

bool CandidateSet::Add(const Index& k) {
  IDXSEL_DCHECK(!k.empty());
  auto [it, inserted] = position_.emplace(k, indexes_.size());
  if (inserted) indexes_.push_back(k);
  return inserted;
}

bool CandidateSet::Contains(const Index& k) const {
  return position_.count(k) != 0;
}

void CandidateSet::Merge(const CandidateSet& other) {
  for (const Index& k : other.indexes()) Add(k);
}

CandidateSet EnumerateAllCandidates(const Workload& workload,
                                    uint32_t max_width,
                                    const rt::Deadline& deadline) {
  rt::DeadlinePoller poller(deadline);
  auto combos = CollectCooccurringCombos(workload, max_width, poller);
  std::vector<Index> result;
  result.reserve(combos.size());
  for (const auto& [combo, freq] : combos) {
    (void)freq;
    result.push_back(RepresentativeOrder(workload, combo.attributes()));
  }
  // Permutation representatives can collide (two sorted combos map to the
  // same ordering only if equal, so they cannot), but keep the canonical
  // dedup + deterministic order regardless.
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return CandidateSet(std::move(result));
}

CandidateSet GenerateCandidates(const Workload& workload,
                                CandidateHeuristic heuristic, size_t total,
                                uint32_t max_width,
                                const rt::Deadline& deadline) {
  IDXSEL_CHECK_GT(max_width, 0u);
  rt::DeadlinePoller poller(deadline);
  auto combos = CollectCooccurringCombos(workload, max_width, poller);

  // Bucket combos by width with their heuristic score (lower = better).
  struct Scored {
    double score;
    Index combo;
  };
  std::vector<std::vector<Scored>> by_width(max_width + 1);
  {
    // Counting pass so each bucket allocates exactly once.
    std::vector<size_t> width_count(max_width + 1, 0);
    for (const auto& [combo, freq] : combos) {
      (void)freq;
      ++width_count[combo.width()];
    }
    for (uint32_t m = 1; m <= max_width; ++m) {
      by_width[m].reserve(width_count[m]);
    }
  }
  for (const auto& [combo, freq] : combos) {
    double score = 0.0;
    switch (heuristic) {
      case CandidateHeuristic::kH1M:
        score = -freq;  // most frequent first
        break;
      case CandidateHeuristic::kH2M:
        score = CombinedSelectivity(workload, combo);
        break;
      case CandidateHeuristic::kH3M:
        score = CombinedSelectivity(workload, combo) / freq;
        break;
    }
    by_width[combo.width()].push_back(Scored{score, combo});
  }

  const size_t per_width = std::max<size_t>(1, total / max_width);
  CandidateSet result;
  for (uint32_t m = 1; m <= max_width; ++m) {
    auto& bucket = by_width[m];
    std::sort(bucket.begin(), bucket.end(),
              [](const Scored& x, const Scored& y) {
                if (x.score != y.score) return x.score < y.score;
                return x.combo < y.combo;
              });
    const size_t take = std::min(per_width, bucket.size());
    for (size_t r = 0; r < take; ++r) {
      result.Add(RepresentativeOrder(workload, bucket[r].combo.attributes()));
    }
  }
  return result;
}

CandidateSet SkylineFilter(const CandidateSet& candidates,
                           WhatIfEngine& engine,
                           const rt::Deadline& deadline) {
  rt::DeadlinePoller poller(deadline);
  const Workload& workload = engine.workload();
  const auto applicability = ComputeApplicability(workload, candidates);

  std::vector<char> keep(candidates.size(), 0);
  // Invert: candidate -> applicable queries is what we have per query.
  struct Entry {
    double memory;
    double cost;
    uint32_t candidate;
  };
#if defined(IDXSEL_KERNEL)
  // Dense fast path: candidates interned once; queries are visited in
  // ascending order, so a per-candidate cursor over its posting list is
  // the dense row slot of every (j, c) pair this sweep prices. Values and
  // engine accounting match the keyed lookups below exactly.
  const bool dense = engine.DenseActive();
  std::vector<kernel::IndexId> ids;
  std::vector<uint32_t> cursor;
  if (dense) {
    ids.reserve(candidates.size());
    for (uint32_t c = 0; c < candidates.size(); ++c) {
      ids.push_back(engine.InternIndex(candidates[c]));
    }
    cursor.assign(candidates.size(), 0);
  }
#endif
  for (QueryId j = 0; j < workload.num_queries(); ++j) {
    // A half-swept skyline cannot tell "dominated" from "never examined";
    // degrade to the identity filter instead of dropping unjudged
    // candidates (see header).
    if (poller.Expired()) return candidates;
    std::vector<Entry> entries;
    entries.reserve(applicability[j].size());
    for (uint32_t c : applicability[j]) {
#if defined(IDXSEL_KERNEL)
      if (dense) {
        const double memory = engine.IndexMemoryDense(ids[c]);
        entries.push_back(Entry{
            memory, engine.CostWithIndexDense(j, ids[c], cursor[c]++), c});
        continue;
      }
#endif
      entries.push_back(Entry{engine.IndexMemory(candidates[c]),
                              engine.CostWithIndex(j, candidates[c]), c});
    }
    // Skyline sweep: ascending memory, keep strictly improving cost.
    std::sort(entries.begin(), entries.end(), [](const Entry& x,
                                                 const Entry& y) {
      if (x.memory != y.memory) return x.memory < y.memory;
      if (!ExactlyEqual(x.cost, y.cost)) return x.cost < y.cost;
      return x.candidate < y.candidate;
    });
    double best_cost = std::numeric_limits<double>::infinity();
    for (const Entry& e : entries) {
      if (e.cost < best_cost) {
        keep[e.candidate] = 1;
        best_cost = e.cost;
      }
    }
  }

  CandidateSet result;
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (keep[c]) result.Add(candidates[c]);
  }
  return result;
}

std::vector<std::vector<uint32_t>> ComputeApplicability(
    const Workload& workload, const CandidateSet& candidates) {
  std::vector<std::vector<uint32_t>> applicability(workload.num_queries());
  // Counting pass so each per-query list allocates exactly once.
  std::vector<uint32_t> counts(workload.num_queries(), 0);
  for (uint32_t c = 0; c < candidates.size(); ++c) {
    for (QueryId j : workload.queries_with(candidates[c].leading())) {
      ++counts[j];
    }
  }
  for (QueryId j = 0; j < workload.num_queries(); ++j) {
    applicability[j].reserve(counts[j]);
  }
  for (uint32_t c = 0; c < candidates.size(); ++c) {
    const Index& k = candidates[c];
    for (QueryId j : workload.queries_with(k.leading())) {
      applicability[j].push_back(c);
    }
  }
  return applicability;
}

double MeanApplicableCandidates(
    const std::vector<std::vector<uint32_t>>& applicability) {
  if (applicability.empty()) return 0.0;
  size_t total = 0;
  for (const auto& sets : applicability) total += sets.size();
  return static_cast<double>(total) /
         static_cast<double>(applicability.size());
}

}  // namespace idxsel::candidates
