// Index-candidate generation (the "first step" of traditional two-step
// selection approaches, Sections II-D and III).
//
// Provides:
//   * IC_max — the exhaustive candidate set: for every query, every
//     non-empty attribute subset up to `max_width` attributes, one
//     representative permutation per subset (attributes ordered by
//     ascending selectivity, the "presumably best representative" the paper
//     uses when substituting permutations), deduplicated workload-wide.
//   * H1-M / H2-M / H3-M — the scalable candidate heuristics of Example 1
//     (iv): for each width m = 1..4 pick the h = M/4 co-occurring attribute
//     combinations with (H1-M) the highest frequency-weighted occurrence,
//     (H2-M) the smallest combined selectivity, (H3-M) the best ratio of
//     combined selectivity to occurrence.
//   * Skyline filtering — Kimura-style removal of candidates that are
//     dominated (in per-query cost and size) for every query, cf. (H4).
//   * Per-query applicability sets I_j and their average size I-bar_q.

#ifndef IDXSEL_CANDIDATES_CANDIDATES_H_
#define IDXSEL_CANDIDATES_CANDIDATES_H_

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "costmodel/index.h"
#include "costmodel/what_if.h"
#include "workload/workload.h"

namespace idxsel::candidates {

using costmodel::Index;
using costmodel::WhatIfEngine;
using workload::AttributeId;
using workload::QueryId;
using workload::Workload;

/// A deduplicated, deterministic-order list of candidate indexes.
class CandidateSet {
 public:
  CandidateSet() = default;
  explicit CandidateSet(std::vector<Index> indexes);

  /// Adds a candidate; returns false if it was already present.
  bool Add(const Index& k);

  bool Contains(const Index& k) const;

  /// Union with another set (used to *complement* candidate sets with
  /// H6-discovered indexes, Section III-B).
  void Merge(const CandidateSet& other);

  size_t size() const { return indexes_.size(); }
  bool empty() const { return indexes_.empty(); }
  const std::vector<Index>& indexes() const { return indexes_; }
  const Index& operator[](size_t i) const { return indexes_[i]; }

 private:
  std::vector<Index> indexes_;
  std::unordered_map<Index, size_t, costmodel::IndexHash> position_;
};

/// Which candidate heuristic defines a scalable set (Example 1 (iv)).
enum class CandidateHeuristic {
  kH1M,  ///< most frequent attribute combinations
  kH2M,  ///< smallest combined selectivity
  kH3M,  ///< best selectivity / occurrence ratio
};

/// IC_max: the exhaustive candidate set (see file comment). `max_width`
/// defaults to 4, matching the m = 1..4 cap of the paper's candidate
/// heuristics. The subset enumeration polls `deadline`; on expiry the set
/// built so far is returned (a truncated but valid candidate pool — every
/// member still co-occurs in some query).
CandidateSet EnumerateAllCandidates(const Workload& workload,
                                    uint32_t max_width = 4,
                                    const rt::Deadline& deadline =
                                        rt::Deadline());

/// Scalable candidate set of (at most) `total` candidates using the given
/// heuristic: h = total/4 combinations for each width m = 1..max_width.
/// Combinations are drawn from those actually co-occurring in queries.
/// Deadline expiry truncates the co-occurrence scan, so the heuristic
/// ranks (and the result draws from) the combinations seen so far.
CandidateSet GenerateCandidates(const Workload& workload,
                                CandidateHeuristic heuristic, size_t total,
                                uint32_t max_width = 4,
                                const rt::Deadline& deadline = rt::Deadline());

/// Skyline filter (cf. H4 / Kimura et al.): keeps a candidate iff it lies on
/// the (cost, memory) skyline of at least one query it is applicable to.
/// All-or-nothing under a deadline: a partial sweep cannot distinguish
/// "dominated" from "not yet examined", so expiry degrades to the identity
/// filter (returns `candidates` unchanged) rather than dropping candidates
/// it never judged.
CandidateSet SkylineFilter(const CandidateSet& candidates,
                           WhatIfEngine& engine,
                           const rt::Deadline& deadline = rt::Deadline());

/// Per-query applicability sets I_j (candidate positions into
/// `candidates.indexes()`): k is applicable to q_j iff l(k) is in q_j.
std::vector<std::vector<uint32_t>> ComputeApplicability(
    const Workload& workload, const CandidateSet& candidates);

/// I-bar_q: average |I_j| over all queries.
double MeanApplicableCandidates(
    const std::vector<std::vector<uint32_t>>& applicability);

}  // namespace idxsel::candidates

#endif  // IDXSEL_CANDIDATES_CANDIDATES_H_
