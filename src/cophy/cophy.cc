#include "cophy/cophy.h"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/telemetry.h"
#include "obs/obs.h"

namespace idxsel::cophy {

LpStatistics ComputeLpStatistics(const workload::Workload& workload,
                                 const CandidateSet& candidates) {
  const auto applicability =
      candidates::ComputeApplicability(workload, candidates);
  size_t applicable_total = 0;
  for (const auto& sets : applicability) applicable_total += sets.size();

  LpStatistics stats;
  // Variables: x_k per candidate, z_jk per applicable pair, z_j0 per query.
  stats.num_variables =
      candidates.size() + applicable_total + workload.num_queries();
  // Constraints: assignment (6) per query, coupling (7) per applicable
  // pair, one memory budget (8).
  stats.num_constraints = workload.num_queries() + applicable_total + 1;
  stats.mean_applicable_candidates =
      candidates::MeanApplicableCandidates(applicability);
  return stats;
}

mip::Problem BuildProblem(WhatIfEngine& engine, const CandidateSet& candidates,
                          double budget, const rt::Deadline& deadline) {
  IDXSEL_OBS_SPAN(span, "cophy", "cophy.build_problem");
  rt::DeadlinePoller poller(deadline);
  const workload::Workload& workload = engine.workload();
  mip::Problem problem;
  problem.budget = budget;
  problem.query_weight.resize(workload.num_queries());
  problem.base_cost.resize(workload.num_queries());
  for (workload::QueryId j = 0; j < workload.num_queries(); ++j) {
    problem.query_weight[j] = workload.query(j).frequency;
    problem.base_cost[j] = engine.BaseCost(j);
  }
  problem.candidate_costs.resize(candidates.size());
  problem.candidate_memory.resize(candidates.size());
  bool any_penalty = false;
  std::vector<double> penalties(candidates.size(), 0.0);
  for (uint32_t c = 0; c < candidates.size(); ++c) {
    const Index& k = candidates[c];
    if (poller.Expired()) {
      // Unpriced candidates get infinite memory: Canonicalize() drops
      // them, and no finite budget could ever admit one — the truncated
      // problem's feasible set only contains fully-priced candidates.
      problem.candidate_memory[c] = std::numeric_limits<double>::infinity();
      continue;
    }
    const auto& posting = workload.queries_with(k.leading());
    problem.candidate_costs[c].reserve(posting.size());
#if defined(IDXSEL_KERNEL)
    if (engine.DenseActive()) {
      // Same values and engine accounting as the keyed loop below; the
      // posting-list position doubles as the dense row slot, so repeated
      // builds (budget sweeps, PreparedCophy) price hash-free.
      const kernel::IndexId id = engine.InternIndex(k);
      problem.candidate_memory[c] = engine.IndexMemoryDense(id);
      penalties[c] = engine.MaintenancePenaltyDense(id);
      any_penalty = any_penalty || penalties[c] > 0.0;
      for (uint32_t s = 0; s < posting.size(); ++s) {
        problem.candidate_costs[c].push_back(mip::QueryCost{
            posting[s], engine.CostWithIndexDense(posting[s], id, s)});
      }
      continue;
    }
#endif
    problem.candidate_memory[c] = engine.IndexMemory(k);
    penalties[c] = engine.MaintenancePenalty(k);
    any_penalty = any_penalty || penalties[c] > 0.0;
    for (workload::QueryId j : posting) {
      problem.candidate_costs[c].push_back(
          mip::QueryCost{j, engine.CostWithIndex(j, k)});
    }
  }
  if (any_penalty) problem.candidate_penalty = std::move(penalties);
  return problem;
}

lp::Model BuildLpRelaxation(WhatIfEngine& engine,
                            const CandidateSet& candidates, double budget,
                            std::vector<uint32_t>* x_vars) {
  const workload::Workload& workload = engine.workload();
  lp::Model model;

  // x_k variables plus the memory constraint (8).
  std::vector<uint32_t> x(candidates.size());
  lp::Row memory_row;
  memory_row.sense = lp::Sense::kLe;
  memory_row.rhs = budget;
  for (uint32_t c = 0; c < candidates.size(); ++c) {
    x[c] = model.AddVariable(0.0, 1.0);
    memory_row.terms.emplace_back(x[c], engine.IndexMemory(candidates[c]));
  }

  const auto applicability =
      candidates::ComputeApplicability(workload, candidates);
  for (workload::QueryId j = 0; j < workload.num_queries(); ++j) {
    const double b = workload.query(j).frequency;
    lp::Row assignment;  // (6): all z_jk sum to one
    assignment.sense = lp::Sense::kEq;
    assignment.rhs = 1.0;
    const uint32_t z0 = model.AddVariable(b * engine.BaseCost(j), 1.0);
    assignment.terms.emplace_back(z0, 1.0);
    for (uint32_t c : applicability[j]) {
      const uint32_t z =
          model.AddVariable(b * engine.CostWithIndex(j, candidates[c]), 1.0);
      assignment.terms.emplace_back(z, 1.0);
      lp::Row coupling;  // (7): z_jk <= x_k
      coupling.sense = lp::Sense::kLe;
      coupling.rhs = 0.0;
      coupling.terms.emplace_back(z, 1.0);
      coupling.terms.emplace_back(x[c], -1.0);
      model.AddRow(std::move(coupling));
    }
    model.AddRow(std::move(assignment));
  }
  model.AddRow(std::move(memory_row));

  if (x_vars != nullptr) *x_vars = std::move(x);
  return model;
}

namespace {

CophyResult SolveProblem(mip::Problem problem, const CandidateSet& candidates,
                         const mip::SolveOptions& options,
                         LpStatistics lp_stats) {
  IDXSEL_OBS_SPAN(span, "cophy", "cophy.solve");
#if defined(IDXSEL_OBS)
  obs::Registry& registry = obs::Registry::Default();
  registry.GetCounter("idxsel.cophy.solves")->Add(1);
  registry.GetGauge("idxsel.cophy.last_lp_variables")
      ->Set(static_cast<int64_t>(lp_stats.num_variables));
  registry.GetGauge("idxsel.cophy.last_lp_constraints")
      ->Set(static_cast<int64_t>(lp_stats.num_constraints));
#endif
  CophyResult result;
  result.lp_stats = lp_stats;
  const std::vector<uint32_t> mapping = problem.Canonicalize();

  const mip::SolveResult solved = mip::Solve(problem, options);
  result.status = solved.status;
  result.dnf = solved.status.code() == StatusCode::kTimeout;
  // The pipeline deadline covers the whole CoPhy run (problem assembly
  // included). A solver that "finished" on a build-truncated problem, or
  // right after expiry, is still a DNF: what it solved is not the full
  // instance the caller asked for.
  if (!result.dnf && result.status.ok() && options.deadline.expired()) {
    result.status = Status::Timeout("cophy: deadline expired");
    result.dnf = true;
  }
  result.objective = solved.objective;
  result.best_bound = solved.best_bound;
  result.gap = solved.gap;
  result.solve_seconds = solved.wall_seconds;
  result.nodes = solved.nodes;
  for (uint32_t canonical : solved.selected) {
    IDXSEL_CHECK_LT(canonical, mapping.size());
    result.selection.Insert(candidates[mapping[canonical]]);
  }
  IDXSEL_OBS_ONLY(span.SetArg("nodes", static_cast<double>(result.nodes));)

  // Decision provenance: one record per solve, built exclusively from the
  // deterministic end-state (selection, objective, status). Node counts,
  // bounds, and gaps are timing-dependent under parallel branch-and-bound
  // (shared-incumbent pruning), so they stay out of the journal — see
  // doc/parallelism.md.
  if (telemetry::JournalActive()) {
    std::vector<std::string> labels;
    std::vector<telemetry::JournalCandidate> picked;
    labels.reserve(solved.selected.size());
    picked.reserve(solved.selected.size());
    for (uint32_t canonical : solved.selected) {
      labels.push_back(candidates[mapping[canonical]].ToString());
      telemetry::JournalCandidate candidate;
      candidate.index = labels.back().c_str();
      candidate.memory_delta = problem.candidate_memory[canonical];
      picked.push_back(candidate);
    }
    telemetry::JournalEvent event;
    event.strategy = "cophy";
    event.action = "solve";
    event.round = 1;
    event.objective_after = result.objective;
    event.candidates = picked.data();
    event.num_candidates = picked.size();
    const std::string note =
        std::string(result.dnf ? "timeout" : "ok") +
        " selected=" + std::to_string(solved.selected.size());
    event.note = note.c_str();
    telemetry::EmitJournal(event);
  }
  return result;
}

}  // namespace

CophyResult SolveCophy(WhatIfEngine& engine, const CandidateSet& candidates,
                       double budget, const mip::SolveOptions& options) {
  return SolveProblem(
      BuildProblem(engine, candidates, budget, options.deadline), candidates,
      options, ComputeLpStatistics(engine.workload(), candidates));
}

PreparedCophy::PreparedCophy(WhatIfEngine& engine,
                             const CandidateSet& candidates)
    : candidates_(&candidates),
      base_(BuildProblem(engine, candidates,
                         std::numeric_limits<double>::infinity())),
      lp_stats_(ComputeLpStatistics(engine.workload(), candidates)) {}

CophyResult PreparedCophy::Solve(double budget,
                                 const mip::SolveOptions& options) const {
  mip::Problem problem = base_;
  problem.budget = budget;
  return SolveProblem(std::move(problem), *candidates_, options, lp_stats_);
}

}  // namespace idxsel::cophy
