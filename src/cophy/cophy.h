// CoPhy-style solver-based index selection (Section II-B, eqs. 5-8).
//
// Re-implementation of the comparison baseline: given a fixed candidate set
// I, CoPhy picks the optimal selection under the one-index-per-query
// assumption by solving the binary program
//
//   minimize    sum_j sum_{k in I_j + {0}} b_j f_j(k) z_jk
//   subject to  sum_k z_jk = 1              for all j        (6)
//               z_jk <= x_k                                   (7)
//               sum_i p_i x_i <= A                            (8)
//
// The heavy path solves the equivalent reduced form via idxsel::mip (the
// CPLEX substitute, exact with mipgap/time-limit). The explicit LP (for
// Figure 6's size statistics and for small-instance cross-checks via the
// simplex) is also provided.

#ifndef IDXSEL_COPHY_COPHY_H_
#define IDXSEL_COPHY_COPHY_H_

#include <cstdint>

#include "candidates/candidates.h"
#include "costmodel/index.h"
#include "costmodel/what_if.h"
#include "lp/model.h"
#include "mip/branch_and_bound.h"
#include "mip/problem.h"

namespace idxsel::cophy {

using candidates::CandidateSet;
using costmodel::Index;
using costmodel::IndexConfig;
using costmodel::WhatIfEngine;

/// Size of CoPhy's LP for a candidate set (Figure 6 / Section II-B):
/// variables |I| + sum_j (|I_j| + 1), constraints Q + sum_j |I_j| + 1.
struct LpStatistics {
  size_t num_variables = 0;
  size_t num_constraints = 0;
  double mean_applicable_candidates = 0.0;  ///< I-bar_q.
};

/// Counts variables/constraints without building anything.
LpStatistics ComputeLpStatistics(const workload::Workload& workload,
                                 const CandidateSet& candidates);

/// Builds the reduced binary program (see mip::Problem). Issues the
/// f_j(0) / f_j(k) what-if calls for every applicable (query, candidate)
/// pair — this is exactly the ~Q * I-bar_q call volume the paper attributes
/// to CoPhy. The problem is returned un-canonicalized.
///
/// The per-candidate what-if loop polls `deadline`; candidates whose calls
/// were cut short are given +infinite memory (and no cost entries), so a
/// truncated build still yields a well-formed problem whose solutions can
/// only use fully-priced candidates.
mip::Problem BuildProblem(WhatIfEngine& engine, const CandidateSet& candidates,
                          double budget,
                          const rt::Deadline& deadline = rt::Deadline());

/// Builds the full explicit LP relaxation (eqs. 5-8 with 0 <= x, z <= 1).
/// `x_vars` (optional) receives the column id of each candidate's x_k.
lp::Model BuildLpRelaxation(WhatIfEngine& engine,
                            const CandidateSet& candidates, double budget,
                            std::vector<uint32_t>* x_vars = nullptr);

/// Outcome of a CoPhy run.
struct CophyResult {
  Status status;            ///< Ok, or kTimeout for a DNF.
  IndexConfig selection;    ///< Chosen indexes (valid even on timeout).
  double objective = 0.0;   ///< F(selection), frequency-weighted.
  double best_bound = 0.0;  ///< Proven objective lower bound.
  double gap = 0.0;
  double solve_seconds = 0.0;  ///< Solver time, excluding what-if calls.
  uint64_t nodes = 0;
  bool dnf = false;  ///< Did not finish within the time limit.
  LpStatistics lp_stats;
};

/// Runs CoPhy end to end on a candidate set: builds the program (what-if
/// calls), solves it, and maps the solution back to indexes.
/// `options.deadline` governs the whole run — problem assembly (see
/// BuildProblem) as well as the branch-and-bound; a run that overran its
/// deadline reports kTimeout/dnf even if the solver itself finished.
CophyResult SolveCophy(WhatIfEngine& engine, const CandidateSet& candidates,
                       double budget, const mip::SolveOptions& options = {});

/// Amortizes the expensive part of SolveCophy — what-if calls and problem
/// assembly — across many budgets (frontier sweeps solve the same program
/// with A as the only change). The candidate set must outlive the object.
class PreparedCophy {
 public:
  PreparedCophy(WhatIfEngine& engine, const CandidateSet& candidates);

  /// Solves for one budget; only the per-budget canonicalization and the
  /// branch-and-bound run are paid.
  CophyResult Solve(double budget,
                    const mip::SolveOptions& options = {}) const;

  const LpStatistics& lp_stats() const { return lp_stats_; }

 private:
  const CandidateSet* candidates_;
  mip::Problem base_;  ///< Budget-free master copy.
  LpStatistics lp_stats_;
};

}  // namespace idxsel::cophy

#endif  // IDXSEL_COPHY_COPHY_H_
