// One-stop index-advisor facade.
//
// Wraps workload -> (candidates) -> strategy -> recommendation behind a
// single call, for users who want "give me indexes for this budget" rather
// than the individual research components. Every strategy of the paper is
// selectable; H6 (Algorithm 1) is the default and needs no candidate set.

#ifndef IDXSEL_ADVISOR_ADVISOR_H_
#define IDXSEL_ADVISOR_ADVISOR_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/recursive_selector.h"
#include "costmodel/index.h"
#include "costmodel/what_if.h"
#include "mip/branch_and_bound.h"
#include "obs/journal.h"
#include "obs/report.h"
#include "shard/sharded_selector.h"
#include "workload/compression.h"

namespace idxsel::advisor {

using costmodel::Index;
using costmodel::IndexConfig;
using costmodel::WhatIfEngine;

/// Selection strategy to run (Definition 1 + CoPhy).
enum class StrategyKind {
  kRecursive,   ///< H6, Algorithm 1 (default; no candidate set needed).
  kH1,          ///< frequency rule
  kH2,          ///< selectivity rule
  kH3,          ///< selectivity/frequency rule
  kH4,          ///< greedy by benefit
  kH4Skyline,   ///< greedy by benefit on skyline-filtered candidates
  kH5,          ///< greedy by benefit per byte
  kCophy,       ///< solver-based optimum over the candidate set
};

/// Human-readable strategy name ("H6 (Algorithm 1)", "CoPhy", ...).
const char* StrategyName(StrategyKind kind);

/// Stable lowercase key used in metric names ("h6", "h4_skyline", ...).
const char* StrategyKey(StrategyKind kind);

/// What Recommend() does when the configured strategy does not finish
/// cleanly (deadline expiry, solver failure) — see doc/robustness.md.
enum class FallbackPolicy {
  /// Return the primary strategy's best-so-far incumbent as-is.
  kNone,
  /// Additionally run the cheapest heuristic that can always complete —
  /// H1 over single-attribute candidates, whose ranking needs no what-if
  /// calls — and return whichever feasible selection has the lower
  /// workload cost. The primary's incumbent still wins when it is better.
  kCheapestHeuristic,
};

/// Advisor configuration.
struct AdvisorOptions {
  /// Budget as a share w of total single-attribute index memory (eq. 10);
  /// ignored when budget_bytes > 0.
  double budget_fraction = 0.2;
  double budget_bytes = 0.0;  ///< Explicit budget in bytes (0 = use w).
  StrategyKind strategy = StrategyKind::kRecursive;
  /// Candidate-set cap for candidate-based strategies (H1-H5, CoPhy);
  /// 0 = exhaustive enumeration (IC_max).
  size_t candidate_limit = 0;
  uint32_t candidate_max_width = 4;
  mip::SolveOptions solver;             ///< CoPhy solver knobs.
  core::RecursiveOptions recursive;     ///< H6 extensions (budget is set
                                        ///< by the advisor).

  /// Worker threads for every parallel stage under this Recommend() call:
  /// H6 round evaluation, MIP subtree exploration, and portfolio racing.
  /// 0 = auto (exec::DefaultThreads(): the IDXSEL_THREADS env override, or
  /// hardware_concurrency clamped to [1, 64]); 1 forces fully serial
  /// execution; n = exactly n lanes. Overrides `recursive.threads` and
  /// `solver.threads`. Auto is the default because parallel H6 and MIP
  /// runs return the same recommendations as serial ones — see
  /// doc/parallelism.md and EXPERIMENTS.md.
  size_t threads = 0;
  /// Portfolio racing: additional strategies run concurrently against
  /// `strategy` under the same budget and deadline, each on its own lane
  /// of the shared pool (serially, one after another, when only one
  /// thread is available — same winner either way). The recommendation is
  /// the feasible selection with the lowest workload cost; ties go to the
  /// primary, then to portfolio order, so the winner is deterministic and
  /// independent of which lane finishes first. A lane that hits the
  /// deadline contributes its anytime incumbent; a lane that fails
  /// outright contributes nothing. Empty = classic single-strategy mode.
  /// See doc/parallelism.md ("Portfolio racing").
  std::vector<StrategyKind> portfolio;

  /// idxsel::shard — per-table sharded selection with the global budget
  /// arbiter (doc/sharding.md). 0 = auto: shard only when the workload has
  /// at least `shard_auto_min_tables` query-bearing tables (or when the
  /// IDXSEL_SHARDS env var forces a count), using min(64, query-bearing
  /// tables) shards. n >= 1 forces the sharded path with n shards (clamped
  /// to the query-bearing table count). The sharded path runs only for
  /// plain single-lane H6 — strategy == kRecursive, no portfolio, and none
  /// of the Remark-1/2 extensions (prune_unused, pair_steps, swap_repair,
  /// multi_index_eval, n_best_singles, existing/reconfiguration) — where
  /// it returns bit-identical selections, traces, and journals to the
  /// unsharded run at any shard and thread count; otherwise `shards` is
  /// ignored and the classic path runs.
  size_t shards = 0;
  size_t shard_auto_min_tables = 256;
  /// Workload compression v2 applied per shard before selection
  /// (workload/compression.h). kNone (default) preserves bit-identity with
  /// the unsharded run; kDedup/kCluster trade exactness for speed — quality
  /// (cost_before/cost_after) is always evaluated on the full workload.
  workload::CompressionOptions shard_compression{
      workload::CompressionMode::kNone};
  /// Reusable sharded session (serve's incremental hook): when set and the
  /// sharded path is eligible, Recommend() calls shard_session->Select()
  /// instead of building shards from scratch, so only shards marked dirty
  /// since the last call are rebuilt. Not owned; must outlive the call and
  /// must have been built over the same engine/workload.
  shard::ShardedSelector* shard_session = nullptr;

  /// Wall-clock budget for the whole Recommend() call (candidate
  /// generation + strategy + fallback bookkeeping); infinity = unbounded.
  /// When bounded, the derived rt::Deadline is threaded into every stage
  /// (overriding any deadline set on `recursive`/`solver`), making each
  /// strategy anytime: on expiry Recommend() still returns ok() with the
  /// best-so-far incumbent and Recommendation::status == kTimeout.
  double time_limit_seconds = std::numeric_limits<double>::infinity();
  /// Optional cancellation observed by every deadline poll (not owned;
  /// must outlive the call). Works with or without a time limit.
  const rt::CancellationToken* cancellation = nullptr;
  /// Degradation behaviour when the strategy misses its deadline/fails.
  FallbackPolicy fallback = FallbackPolicy::kCheapestHeuristic;
};

/// What the advisor recommends, with enough context to act on it.
struct Recommendation {
  StrategyKind strategy = StrategyKind::kRecursive;
  IndexConfig selection;
  double budget = 0.0;
  double memory = 0.0;
  double cost_before = 0.0;  ///< F(empty).
  double cost_after = 0.0;   ///< F(selection), incl. maintenance.
  double runtime_seconds = 0.0;
  uint64_t whatif_calls = 0;
  /// How the *primary* strategy terminated: OK, kTimeout (anytime
  /// incumbent returned — any strategy, not just CoPhy), or the solver's
  /// error when the fallback absorbed it. Recommend() itself stays ok()
  /// in all these cases; its own error Results are reserved for unusable
  /// inputs.
  Status status;
  /// Any strategy hit its deadline/limit and returned an incumbent (the
  /// paper's "DNF" generalized beyond CoPhy).
  bool dnf = false;
  /// The recommendation is best-effort rather than the configured
  /// strategy's clean answer: it timed out, fell back, or was computed
  /// against a backend that returned garbage (see WhatIfEngine::health).
  bool degraded = false;
  /// FallbackPolicy replaced the primary's incumbent with the fallback
  /// heuristic's selection (only when the latter was strictly cheaper).
  bool fell_back = false;
  /// Strategy whose selection this actually is: `strategy` normally, the
  /// fallback heuristic when `fell_back`, the race winner under
  /// AdvisorOptions::portfolio.
  StrategyKind executed_strategy = StrategyKind::kRecursive;
  /// H6 only: the committed construction steps.
  std::vector<core::ConstructionStep> trace;
  /// Observability digest of this run: metric deltas and spans recorded
  /// while Recommend() was executing. Populated in IDXSEL_OBS builds
  /// (counters always; spans only while obs::Enabled()); empty otherwise.
  obs::RunReport report;
  /// Selection journal of this run: one structured decision record per
  /// committed round of every strategy lane (schema idxsel.journal.v1),
  /// in deterministic lane order — byte-identical at any thread count,
  /// kernel on or off. Populated in IDXSEL_OBS builds while the journal
  /// is enabled (obs::SetJournalEnabled / IDXSEL_JOURNAL=1); empty
  /// otherwise. Export with obs::JournalToJsonl as a *.journal.jsonl
  /// sidecar; query with Explain().
  std::vector<obs::JournalRecord> journal;

  /// "Why was/wasn't `index` selected?" — renders the journal evidence
  /// about one index: the committing/picking record, rejection reasons
  /// with benefit/memory ratios, prunes and swaps it appears in. Returns
  /// a well-formed "observability disabled" stub when built with
  /// -DIDXSEL_ENABLE_OBS=OFF, and points at IDXSEL_JOURNAL when the
  /// journal was off during the run.
  std::string Explain(const costmodel::Index& index) const;
};

/// Shard count the kRecursive lane will use under `options` for this
/// workload; 0 = the classic unsharded path (ineligible configuration, or
/// auto-sharding declined). Exposed so long-lived callers (idxsel::serve)
/// can decide whether to maintain a reusable shard::ShardedSelector
/// session and size it consistently with Recommend()'s own gate.
size_t ResolveShardCount(const AdvisorOptions& options,
                         const workload::Workload& workload);

/// Runs the configured strategy against `engine`'s workload.
Result<Recommendation> Recommend(WhatIfEngine& engine,
                                 const AdvisorOptions& options);

/// Renders a human-readable report: summary block plus one line per
/// recommended index (attributes, memory, #queries it serves best).
/// `attribute_names` is optional ("TABLE.ATTR" labels; ids otherwise).
std::string RenderReport(WhatIfEngine& engine, const Recommendation& rec,
                         const std::vector<std::string>* attribute_names =
                             nullptr);

}  // namespace idxsel::advisor

#endif  // IDXSEL_ADVISOR_ADVISOR_H_
