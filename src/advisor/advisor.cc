#include "advisor/advisor.h"

#include <algorithm>

#include "candidates/candidates.h"
#include "common/format.h"
#include "common/stopwatch.h"
#include "cophy/cophy.h"
#include "costmodel/ddl.h"
#include "obs/obs.h"
#include "selection/heuristics.h"

namespace idxsel::advisor {
namespace {

bool NeedsCandidates(StrategyKind kind) {
  return kind != StrategyKind::kRecursive;
}

}  // namespace

const char* StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRecursive:
      return "H6 (Algorithm 1)";
    case StrategyKind::kH1:
      return "H1 (frequency)";
    case StrategyKind::kH2:
      return "H2 (selectivity)";
    case StrategyKind::kH3:
      return "H3 (selectivity/frequency)";
    case StrategyKind::kH4:
      return "H4 (benefit greedy)";
    case StrategyKind::kH4Skyline:
      return "H4 + skyline";
    case StrategyKind::kH5:
      return "H5 (benefit per byte)";
    case StrategyKind::kCophy:
      return "CoPhy (solver)";
  }
  return "unknown";
}

const char* StrategyKey(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRecursive:
      return "h6";
    case StrategyKind::kH1:
      return "h1";
    case StrategyKind::kH2:
      return "h2";
    case StrategyKind::kH3:
      return "h3";
    case StrategyKind::kH4:
      return "h4";
    case StrategyKind::kH4Skyline:
      return "h4_skyline";
    case StrategyKind::kH5:
      return "h5";
    case StrategyKind::kCophy:
      return "cophy";
  }
  return "unknown";
}

Result<Recommendation> Recommend(WhatIfEngine& engine,
                                 const AdvisorOptions& options) {
  if (options.budget_bytes < 0.0 || options.budget_fraction < 0.0) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  Recommendation rec;
  rec.strategy = options.strategy;
#if defined(IDXSEL_OBS)
  // Brackets the whole call so rec.report carries the metric deltas and
  // every span the strategies record below. Cold path: two registry
  // snapshots per Recommend().
  obs::RunScope obs_scope(StrategyName(options.strategy));
#endif

  // Resolve the budget.
  if (options.budget_bytes > 0.0) {
    rec.budget = options.budget_bytes;
  } else {
    double total_single = 0.0;
    for (workload::AttributeId i = 0;
         i < engine.workload().num_attributes(); ++i) {
      total_single += engine.IndexMemory(Index(i));
    }
    rec.budget = options.budget_fraction * total_single;
  }

  rec.cost_before = engine.WorkloadCost(IndexConfig{});
  const uint64_t calls_before = engine.stats().calls;
  Stopwatch watch;

  // Scoped so the span closes (and lands in the tracer) before the run
  // report snapshot at the bottom collects it.
  {
  IDXSEL_OBS_SPAN(recommend_span, "advisor", "advisor.recommend");

  candidates::CandidateSet candidate_set;
  if (NeedsCandidates(options.strategy)) {
    if (options.candidate_limit == 0) {
      candidate_set = candidates::EnumerateAllCandidates(
          engine.workload(), options.candidate_max_width);
    } else {
      candidate_set = candidates::GenerateCandidates(
          engine.workload(), candidates::CandidateHeuristic::kH1M,
          options.candidate_limit, options.candidate_max_width);
    }
  }

  switch (options.strategy) {
    case StrategyKind::kRecursive: {
      core::RecursiveOptions recursive = options.recursive;
      recursive.budget = rec.budget;
      core::RecursiveResult result = core::SelectRecursive(engine, recursive);
      rec.selection = std::move(result.selection);
      rec.trace = std::move(result.trace);
      break;
    }
    case StrategyKind::kH1:
    case StrategyKind::kH2:
    case StrategyKind::kH3: {
      const selection::RuleHeuristic rule =
          options.strategy == StrategyKind::kH1
              ? selection::RuleHeuristic::kH1
              : (options.strategy == StrategyKind::kH2
                     ? selection::RuleHeuristic::kH2
                     : selection::RuleHeuristic::kH3);
      rec.selection =
          selection::SelectRuleBased(engine, candidate_set, rec.budget, rule)
              .selection;
      break;
    }
    case StrategyKind::kH4:
    case StrategyKind::kH4Skyline: {
      rec.selection =
          selection::SelectByBenefit(engine, candidate_set, rec.budget,
                                     options.strategy ==
                                         StrategyKind::kH4Skyline)
              .selection;
      break;
    }
    case StrategyKind::kH5: {
      rec.selection = selection::SelectByBenefitPerSize(engine, candidate_set,
                                                        rec.budget)
                          .selection;
      break;
    }
    case StrategyKind::kCophy: {
      cophy::CophyResult result = cophy::SolveCophy(
          engine, candidate_set, rec.budget, options.solver);
      if (!result.status.ok() &&
          result.status.code() != StatusCode::kTimeout) {
        return result.status;
      }
      rec.selection = std::move(result.selection);
      rec.dnf = result.dnf;
      break;
    }
  }
  }  // recommend_span closes here.

  rec.runtime_seconds = watch.ElapsedSeconds();
  rec.whatif_calls = engine.stats().calls - calls_before;
  rec.memory = engine.ConfigMemory(rec.selection);
  rec.cost_after = engine.WorkloadCost(rec.selection);
#if defined(IDXSEL_OBS)
  {
    obs::Registry& registry = obs::Registry::Default();
    const std::string prefix =
        std::string("idxsel.strategy.") + StrategyKey(options.strategy);
    registry.GetCounter(prefix + ".runs")->Add(1);
    if (obs::Enabled()) {
      registry.GetHistogram(prefix + ".wall_ns")
          ->Record(static_cast<uint64_t>(rec.runtime_seconds * 1e9));
    }
    rec.report = obs_scope.Finish();
  }
#endif
  return rec;
}

std::string RenderReport(WhatIfEngine& engine, const Recommendation& rec,
                         const std::vector<std::string>* attribute_names) {
  const workload::Workload& w = engine.workload();
  auto index_label = [&](const Index& k) {
    std::string out = "(";
    for (size_t u = 0; u < k.width(); ++u) {
      if (u != 0) out += ", ";
      out += attribute_names != nullptr
                 ? (*attribute_names)[k.attribute(u)]
                 : std::to_string(k.attribute(u));
    }
    return out + ")";
  };

  std::string out;
  out += "=== Index recommendation — " +
         std::string(StrategyName(rec.strategy)) + " ===\n";
  out += "budget:        " + FormatBytes(rec.budget) + "\n";
  out += "memory used:   " + FormatBytes(rec.memory) + " (" +
         FormatDouble(rec.budget > 0 ? 100.0 * rec.memory / rec.budget : 0.0,
                      1) +
         "% of budget)\n";
  out += "workload cost: " + FormatDouble(rec.cost_before, 0) + " -> " +
         FormatDouble(rec.cost_after, 0) + " (" +
         FormatDouble(rec.cost_before > 0
                          ? 100.0 * rec.cost_after / rec.cost_before
                          : 0.0,
                      2) +
         "% of unindexed)\n";
  out += "runtime:       " + FormatSeconds(rec.runtime_seconds) +
         (rec.dnf ? " (DNF: time limit, incumbent reported)" : "") + "\n";
  out += "what-if calls: " + FormatCount(static_cast<int64_t>(
                                 rec.whatif_calls)) +
         "\n\n";

  // Count, per index, the queries it serves best.
  std::vector<size_t> served(rec.selection.size(), 0);
  const auto& indexes = rec.selection.indexes();
  for (workload::QueryId j = 0; j < w.num_queries(); ++j) {
    double best = engine.BaseCost(j);
    size_t owner = indexes.size();
    for (size_t p = 0; p < indexes.size(); ++p) {
      if (!engine.Applicable(j, indexes[p])) continue;
      const double cost = engine.CostWithIndex(j, indexes[p]);
      if (cost < best) {
        best = cost;
        owner = p;
      }
    }
    if (owner < indexes.size()) ++served[owner];
  }

  out += "recommended indexes (" + std::to_string(indexes.size()) + "):\n";
  for (size_t p = 0; p < indexes.size(); ++p) {
    out += "  " + index_label(indexes[p]) + "  " +
           FormatBytes(engine.IndexMemory(indexes[p])) + ", best plan for " +
           std::to_string(served[p]) + " queries\n";
  }
  if (!indexes.empty()) {
    out += "\nDDL:\n";
    out += costmodel::RenderCreateStatements(w, rec.selection,
                                             attribute_names);
  }
  return out;
}

}  // namespace idxsel::advisor
