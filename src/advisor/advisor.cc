#include "advisor/advisor.h"

#include <algorithm>
#include <cmath>

#include "candidates/candidates.h"
#include "common/format.h"
#include "common/stopwatch.h"
#include "cophy/cophy.h"
#include "costmodel/ddl.h"
#include "obs/obs.h"
#include "selection/heuristics.h"

namespace idxsel::advisor {
namespace {

bool NeedsCandidates(StrategyKind kind) {
  return kind != StrategyKind::kRecursive;
}

}  // namespace

const char* StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRecursive:
      return "H6 (Algorithm 1)";
    case StrategyKind::kH1:
      return "H1 (frequency)";
    case StrategyKind::kH2:
      return "H2 (selectivity)";
    case StrategyKind::kH3:
      return "H3 (selectivity/frequency)";
    case StrategyKind::kH4:
      return "H4 (benefit greedy)";
    case StrategyKind::kH4Skyline:
      return "H4 + skyline";
    case StrategyKind::kH5:
      return "H5 (benefit per byte)";
    case StrategyKind::kCophy:
      return "CoPhy (solver)";
  }
  return "unknown";
}

const char* StrategyKey(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRecursive:
      return "h6";
    case StrategyKind::kH1:
      return "h1";
    case StrategyKind::kH2:
      return "h2";
    case StrategyKind::kH3:
      return "h3";
    case StrategyKind::kH4:
      return "h4";
    case StrategyKind::kH4Skyline:
      return "h4_skyline";
    case StrategyKind::kH5:
      return "h5";
    case StrategyKind::kCophy:
      return "cophy";
  }
  return "unknown";
}

Result<Recommendation> Recommend(WhatIfEngine& engine,
                                 const AdvisorOptions& options) {
  if (options.budget_bytes < 0.0 || options.budget_fraction < 0.0) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  Recommendation rec;
  rec.strategy = options.strategy;
  rec.executed_strategy = options.strategy;
#if defined(IDXSEL_OBS)
  // Brackets the whole call so rec.report carries the metric deltas and
  // every span the strategies record below. Cold path: two registry
  // snapshots per Recommend().
  obs::RunScope obs_scope(StrategyName(options.strategy));
#endif

  // The advisor-wide wall-clock budget; threaded into every stage below.
  // Unbounded (plus no token) when no limit is configured, in which case
  // per-stage deadlines the caller set on `recursive`/`solver` still
  // apply untouched.
  rt::Deadline deadline = rt::Deadline::After(options.time_limit_seconds);
  if (options.cancellation != nullptr) {
    deadline.set_cancellation(options.cancellation);
  }
  const bool advisor_bounded =
      deadline.bounded() || options.cancellation != nullptr;

  // Resolve the budget. Single-attribute indexes whose size the backend
  // garbled (sanitized to +infinity, see WhatIfEngine) are left out of the
  // total — one broken size estimate must not blow the budget up to
  // infinity and admit everything.
  if (options.budget_bytes > 0.0) {
    rec.budget = options.budget_bytes;
  } else {
    double total_single = 0.0;
    for (workload::AttributeId i = 0;
         i < engine.workload().num_attributes(); ++i) {
      const double mem = engine.IndexMemory(Index(i));
      if (std::isfinite(mem)) total_single += mem;
    }
    rec.budget = options.budget_fraction * total_single;
  }

  rec.cost_before = engine.WorkloadCost(IndexConfig{});
  const uint64_t calls_before = engine.stats().calls;
  Stopwatch watch;

  // Scoped so the span closes (and lands in the tracer) before the run
  // report snapshot at the bottom collects it.
  {
  IDXSEL_OBS_SPAN(recommend_span, "advisor", "advisor.recommend");

  candidates::CandidateSet candidate_set;
  if (NeedsCandidates(options.strategy)) {
    if (options.candidate_limit == 0) {
      candidate_set = candidates::EnumerateAllCandidates(
          engine.workload(), options.candidate_max_width, deadline);
    } else {
      candidate_set = candidates::GenerateCandidates(
          engine.workload(), candidates::CandidateHeuristic::kH1M,
          options.candidate_limit, options.candidate_max_width, deadline);
    }
  }

  switch (options.strategy) {
    case StrategyKind::kRecursive: {
      core::RecursiveOptions recursive = options.recursive;
      recursive.budget = rec.budget;
      if (advisor_bounded) recursive.deadline = deadline;
      core::RecursiveResult result = core::SelectRecursive(engine, recursive);
      rec.selection = std::move(result.selection);
      rec.trace = std::move(result.trace);
      rec.status = std::move(result.status);
      break;
    }
    case StrategyKind::kH1:
    case StrategyKind::kH2:
    case StrategyKind::kH3: {
      const selection::RuleHeuristic rule =
          options.strategy == StrategyKind::kH1
              ? selection::RuleHeuristic::kH1
              : (options.strategy == StrategyKind::kH2
                     ? selection::RuleHeuristic::kH2
                     : selection::RuleHeuristic::kH3);
      selection::SelectionResult result = selection::SelectRuleBased(
          engine, candidate_set, rec.budget, rule, deadline);
      rec.selection = std::move(result.selection);
      rec.status = std::move(result.status);
      break;
    }
    case StrategyKind::kH4:
    case StrategyKind::kH4Skyline: {
      selection::SelectionResult result = selection::SelectByBenefit(
          engine, candidate_set, rec.budget,
          options.strategy == StrategyKind::kH4Skyline, deadline);
      rec.selection = std::move(result.selection);
      rec.status = std::move(result.status);
      break;
    }
    case StrategyKind::kH5: {
      selection::SelectionResult result = selection::SelectByBenefitPerSize(
          engine, candidate_set, rec.budget, deadline);
      rec.selection = std::move(result.selection);
      rec.status = std::move(result.status);
      break;
    }
    case StrategyKind::kCophy: {
      mip::SolveOptions solver = options.solver;
      if (advisor_bounded) solver.deadline = deadline;
      cophy::CophyResult result =
          cophy::SolveCophy(engine, candidate_set, rec.budget, solver);
      if (!result.status.ok() &&
          result.status.code() != StatusCode::kTimeout &&
          options.fallback == FallbackPolicy::kNone) {
        return result.status;
      }
      rec.selection = std::move(result.selection);
      rec.status = std::move(result.status);
      break;
    }
  }

  // A strategy that completed just before the wire still consumed the
  // whole advisor budget; report it as a DNF like any cut-short run.
  if (rec.status.ok() && deadline.expired()) {
    rec.status = Status::Timeout("advisor: deadline expired");
  }
  rec.dnf = rec.status.code() == StatusCode::kTimeout;

  // Graceful degradation: if the strategy did not finish cleanly, run the
  // cheapest always-completing heuristic (H1 ranks without what-if calls)
  // over single-attribute candidates, and keep whichever feasible
  // selection is cheaper. The fallback runs *without* the deadline: the
  // budget is already spent and this pass is O(attributes) on cached
  // sizes.
  if (!rec.status.ok() &&
      options.fallback == FallbackPolicy::kCheapestHeuristic) {
    candidates::CandidateSet singles;
    for (workload::AttributeId i = 0;
         i < engine.workload().num_attributes(); ++i) {
      singles.Add(Index(i));
    }
    selection::SelectionResult fb = selection::SelectRuleBased(
        engine, singles, rec.budget, selection::RuleHeuristic::kH1);
    const double primary_cost = engine.WorkloadCost(rec.selection);
    if (fb.objective < primary_cost) {
      rec.selection = std::move(fb.selection);
      rec.trace.clear();
      rec.fell_back = true;
      rec.executed_strategy = StrategyKind::kH1;
    }
  }
  }  // recommend_span closes here.

  rec.runtime_seconds = watch.ElapsedSeconds();
  rec.whatif_calls = engine.stats().calls - calls_before;
  rec.memory = engine.ConfigMemory(rec.selection);
  rec.cost_after = engine.WorkloadCost(rec.selection);
  rec.degraded = !rec.status.ok() || rec.fell_back || !engine.health().ok();
#if defined(IDXSEL_OBS)
  {
    obs::Registry& registry = obs::Registry::Default();
    const std::string prefix =
        std::string("idxsel.strategy.") + StrategyKey(options.strategy);
    registry.GetCounter(prefix + ".runs")->Add(1);
    if (rec.dnf) registry.GetCounter("idxsel.rt.timeout")->Add(1);
    if (rec.fell_back) registry.GetCounter("idxsel.rt.fallback")->Add(1);
    if (obs::Enabled()) {
      registry.GetHistogram(prefix + ".wall_ns")
          ->Record(static_cast<uint64_t>(rec.runtime_seconds * 1e9));
    }
    rec.report = obs_scope.Finish();
  }
#endif
  return rec;
}

std::string RenderReport(WhatIfEngine& engine, const Recommendation& rec,
                         const std::vector<std::string>* attribute_names) {
  const workload::Workload& w = engine.workload();
  auto index_label = [&](const Index& k) {
    std::string out = "(";
    for (size_t u = 0; u < k.width(); ++u) {
      if (u != 0) out += ", ";
      out += attribute_names != nullptr
                 ? (*attribute_names)[k.attribute(u)]
                 : std::to_string(k.attribute(u));
    }
    return out + ")";
  };

  std::string out;
  out += "=== Index recommendation — " +
         std::string(StrategyName(rec.strategy)) + " ===\n";
  out += "budget:        " + FormatBytes(rec.budget) + "\n";
  out += "memory used:   " + FormatBytes(rec.memory) + " (" +
         FormatDouble(rec.budget > 0 ? 100.0 * rec.memory / rec.budget : 0.0,
                      1) +
         "% of budget)\n";
  out += "workload cost: " + FormatDouble(rec.cost_before, 0) + " -> " +
         FormatDouble(rec.cost_after, 0) + " (" +
         FormatDouble(rec.cost_before > 0
                          ? 100.0 * rec.cost_after / rec.cost_before
                          : 0.0,
                      2) +
         "% of unindexed)\n";
  out += "runtime:       " + FormatSeconds(rec.runtime_seconds) +
         (rec.dnf ? " (DNF: time limit, incumbent reported)" : "") + "\n";
  if (rec.fell_back) {
    out += "note:          fell back to " +
           std::string(StrategyName(rec.executed_strategy)) +
           " (primary strategy did not finish cleanly)\n";
  } else if (rec.degraded) {
    out += "note:          degraded result (timeout or sanitized what-if "
           "answers; see status)\n";
  }
  out += "what-if calls: " + FormatCount(static_cast<int64_t>(
                                 rec.whatif_calls)) +
         "\n\n";

  // Count, per index, the queries it serves best.
  std::vector<size_t> served(rec.selection.size(), 0);
  const auto& indexes = rec.selection.indexes();
  for (workload::QueryId j = 0; j < w.num_queries(); ++j) {
    double best = engine.BaseCost(j);
    size_t owner = indexes.size();
    for (size_t p = 0; p < indexes.size(); ++p) {
      if (!engine.Applicable(j, indexes[p])) continue;
      const double cost = engine.CostWithIndex(j, indexes[p]);
      if (cost < best) {
        best = cost;
        owner = p;
      }
    }
    if (owner < indexes.size()) ++served[owner];
  }

  out += "recommended indexes (" + std::to_string(indexes.size()) + "):\n";
  for (size_t p = 0; p < indexes.size(); ++p) {
    out += "  " + index_label(indexes[p]) + "  " +
           FormatBytes(engine.IndexMemory(indexes[p])) + ", best plan for " +
           std::to_string(served[p]) + " queries\n";
  }
  if (!indexes.empty()) {
    out += "\nDDL:\n";
    out += costmodel::RenderCreateStatements(w, rec.selection,
                                             attribute_names);
  }
  return out;
}

}  // namespace idxsel::advisor
