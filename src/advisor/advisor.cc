#include "advisor/advisor.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

#include "candidates/candidates.h"
#include "common/float_cmp.h"
#include "common/format.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "cophy/cophy.h"
#include "costmodel/ddl.h"
#include "exec/thread_pool.h"
#include "obs/obs.h"
#include "selection/heuristics.h"

namespace idxsel::advisor {
namespace {

bool NeedsCandidates(StrategyKind kind) {
  return kind != StrategyKind::kRecursive;
}

/// True iff `recursive` is plain Algorithm 1 — the configuration whose
/// per-table decomposition the sharded path reproduces exactly. Every
/// Remark-1/2 extension either couples tables through non-move state
/// (swap_repair, existing/reconfiguration), changes the candidate set
/// globally (n_best_singles), or re-evaluates across the whole selection
/// (multi_index_eval) — those run unsharded.
bool PlainRecursive(const core::RecursiveOptions& recursive) {
  return !recursive.prune_unused && !recursive.pair_steps &&
         !recursive.swap_repair && !recursive.multi_index_eval &&
         recursive.n_best_singles == std::numeric_limits<size_t>::max() &&
         recursive.existing == nullptr && recursive.reconfiguration == nullptr;
}

size_t QueryBearingTables(const workload::Workload& w) {
  std::vector<char> has_queries(w.num_tables(), 0);
  for (const workload::Query& q : w.queries()) has_queries[q.table] = 1;
  size_t n = 0;
  for (char h : has_queries) n += h != 0;
  return n;
}

}  // namespace

size_t ResolveShardCount(const AdvisorOptions& options,
                         const workload::Workload& w) {
  if (options.strategy != StrategyKind::kRecursive ||
      !options.portfolio.empty() || !PlainRecursive(options.recursive)) {
    return 0;
  }
  const size_t query_bearing = QueryBearingTables(w);
  if (query_bearing == 0) return 0;
  if (options.shards != 0) return std::min(options.shards, query_bearing);
  if (const char* env = std::getenv("IDXSEL_SHARDS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return std::min(static_cast<size_t>(parsed), query_bearing);
    }
    return 0;  // IDXSEL_SHARDS=0 (or garbage) disables auto sharding
  }
  if (query_bearing >= options.shard_auto_min_tables) {
    return std::min<size_t>(64, query_bearing);
  }
  return 0;
}

namespace {

/// What one strategy lane produced. `hard_error` marks a failure that is
/// neither a clean finish nor an anytime timeout (e.g. solver breakdown):
/// in single-strategy mode it may surface as Recommend()'s error; in a
/// portfolio race the lane simply cannot win.
struct StrategyOutcome {
  IndexConfig selection;
  Status status;
  std::vector<core::ConstructionStep> trace;
  bool hard_error = false;
  /// Strategy-private engines saw backend garbage (sharded path: the
  /// global engine's health cannot see shard-engine sanitization).
  bool degraded = false;
  /// Backend calls issued by strategy-private engines (sharded path);
  /// the global engine's own counter misses them.
  uint64_t extra_whatif_calls = 0;
};

/// Runs one strategy to completion. Thread-safe: WhatIfEngine is
/// concurrency-safe and each lane owns its outcome; `candidate_set` is
/// shared read-only. `shard_count` > 0 routes a kRecursive lane through
/// idxsel::shard (single-lane mode only — Recommend() resolves it to 0
/// for portfolio races); `cost_before` is F(empty), which the sharded
/// arbiter reuses as its objective baseline for degenerate shardings.
StrategyOutcome RunStrategy(WhatIfEngine& engine, StrategyKind kind,
                            const AdvisorOptions& options, double budget,
                            const candidates::CandidateSet& candidate_set,
                            const rt::Deadline& deadline,
                            bool advisor_bounded, size_t threads,
                            size_t shard_count, double cost_before) {
  StrategyOutcome out;
  switch (kind) {
    case StrategyKind::kRecursive: {
      if (shard_count > 0) {
        const rt::Deadline& effective =
            advisor_bounded ? deadline : options.recursive.deadline;
        shard::ShardedResult result;
        if (options.shard_session != nullptr) {
          result = options.shard_session->Select(budget, cost_before,
                                                 effective);
        } else {
          shard::ShardedOptions sharded;
          sharded.shards = shard_count;
          sharded.threads = threads;
          sharded.max_steps = options.recursive.max_steps;
          sharded.min_ratio = options.recursive.min_ratio;
          sharded.max_index_width = options.recursive.max_index_width;
          sharded.compression = options.shard_compression;
          result = shard::SelectSharded(engine, sharded, budget, cost_before,
                                        effective);
        }
        out.selection = std::move(result.selection);
        out.trace = std::move(result.trace);
        out.status = std::move(result.status);
        out.degraded = result.degraded;
        out.extra_whatif_calls = result.whatif_calls;
        break;
      }
      core::RecursiveOptions recursive = options.recursive;
      recursive.budget = budget;
      recursive.threads = threads;
      if (advisor_bounded) recursive.deadline = deadline;
      core::RecursiveResult result = core::SelectRecursive(engine, recursive);
      out.selection = std::move(result.selection);
      out.trace = std::move(result.trace);
      out.status = std::move(result.status);
      break;
    }
    case StrategyKind::kH1:
    case StrategyKind::kH2:
    case StrategyKind::kH3: {
      const selection::RuleHeuristic rule =
          kind == StrategyKind::kH1
              ? selection::RuleHeuristic::kH1
              : (kind == StrategyKind::kH2 ? selection::RuleHeuristic::kH2
                                           : selection::RuleHeuristic::kH3);
      selection::SelectionResult result = selection::SelectRuleBased(
          engine, candidate_set, budget, rule, deadline);
      out.selection = std::move(result.selection);
      out.status = std::move(result.status);
      break;
    }
    case StrategyKind::kH4:
    case StrategyKind::kH4Skyline: {
      selection::SelectionResult result = selection::SelectByBenefit(
          engine, candidate_set, budget,
          kind == StrategyKind::kH4Skyline, deadline);
      out.selection = std::move(result.selection);
      out.status = std::move(result.status);
      break;
    }
    case StrategyKind::kH5: {
      selection::SelectionResult result = selection::SelectByBenefitPerSize(
          engine, candidate_set, budget, deadline);
      out.selection = std::move(result.selection);
      out.status = std::move(result.status);
      break;
    }
    case StrategyKind::kCophy: {
      mip::SolveOptions solver = options.solver;
      solver.threads = threads;
      if (advisor_bounded) solver.deadline = deadline;
      cophy::CophyResult result =
          cophy::SolveCophy(engine, candidate_set, budget, solver);
      out.hard_error = !result.status.ok() &&
                       result.status.code() != StatusCode::kTimeout;
      out.selection = std::move(result.selection);
      out.status = std::move(result.status);
      break;
    }
  }
  return out;
}

}  // namespace

const char* StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRecursive:
      return "H6 (Algorithm 1)";
    case StrategyKind::kH1:
      return "H1 (frequency)";
    case StrategyKind::kH2:
      return "H2 (selectivity)";
    case StrategyKind::kH3:
      return "H3 (selectivity/frequency)";
    case StrategyKind::kH4:
      return "H4 (benefit greedy)";
    case StrategyKind::kH4Skyline:
      return "H4 + skyline";
    case StrategyKind::kH5:
      return "H5 (benefit per byte)";
    case StrategyKind::kCophy:
      return "CoPhy (solver)";
  }
  return "unknown";
}

const char* StrategyKey(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRecursive:
      return "h6";
    case StrategyKind::kH1:
      return "h1";
    case StrategyKind::kH2:
      return "h2";
    case StrategyKind::kH3:
      return "h3";
    case StrategyKind::kH4:
      return "h4";
    case StrategyKind::kH4Skyline:
      return "h4_skyline";
    case StrategyKind::kH5:
      return "h5";
    case StrategyKind::kCophy:
      return "cophy";
  }
  return "unknown";
}

Result<Recommendation> Recommend(WhatIfEngine& engine,
                                 const AdvisorOptions& options) {
  if (options.budget_bytes < 0.0 || options.budget_fraction < 0.0) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  Recommendation rec;
  rec.strategy = options.strategy;
  rec.executed_strategy = options.strategy;
#if defined(IDXSEL_OBS)
  // Brackets the whole call so rec.report carries the metric deltas and
  // every span the strategies record below. Cold path: two registry
  // snapshots per Recommend().
  obs::RunScope obs_scope(StrategyName(options.strategy));
#endif
  // Brackets the selection journal (no-op unless obs::JournalEnabled()).
  // The lane order is installed below once the race list is resolved, so
  // Finish() serializes concurrently-racing lanes deterministically.
  obs::JournalScope journal_scope;

  // The advisor-wide wall-clock budget; threaded into every stage below.
  // Unbounded (plus no token) when no limit is configured, in which case
  // per-stage deadlines the caller set on `recursive`/`solver` still
  // apply untouched.
  rt::Deadline deadline = rt::Deadline::After(options.time_limit_seconds);
  if (options.cancellation != nullptr) {
    deadline.set_cancellation(options.cancellation);
  }
  const bool advisor_bounded =
      deadline.bounded() || options.cancellation != nullptr;

  // Resolve the budget. Single-attribute indexes whose size the backend
  // garbled (sanitized to +infinity, see WhatIfEngine) are left out of the
  // total — one broken size estimate must not blow the budget up to
  // infinity and admit everything.
  if (options.budget_bytes > 0.0) {
    rec.budget = options.budget_bytes;
  } else {
    double total_single = 0.0;
    for (workload::AttributeId i = 0;
         i < engine.workload().num_attributes(); ++i) {
      const double mem = engine.IndexMemory(Index(i));
      if (std::isfinite(mem)) total_single += mem;
    }
    rec.budget = options.budget_fraction * total_single;
  }

  rec.cost_before = engine.WorkloadCost(IndexConfig{});
  const uint64_t calls_before = engine.stats().calls;
  bool strategy_degraded = false;
  uint64_t extra_whatif_calls = 0;
  Stopwatch watch;

  // Scoped so the span closes (and lands in the tracer) before the run
  // report snapshot at the bottom collects it.
  {
  IDXSEL_OBS_SPAN(recommend_span, "advisor", "advisor.recommend");

  // The race list: the primary strategy first, then each distinct
  // portfolio entry in the order given — the deterministic tie-break
  // order of the race.
  std::vector<StrategyKind> lanes{options.strategy};
  for (StrategyKind extra : options.portfolio) {
    if (std::find(lanes.begin(), lanes.end(), extra) == lanes.end()) {
      lanes.push_back(extra);
    }
  }
  {
    // Lane buckets of the journal: the race list in order, then the mip
    // solver sub-records of a CoPhy lane, then the fallback heuristic,
    // then the advisor's own verdict records. Everything after the race
    // list is emitted serially after the lanes joined, so arrival order
    // inside each bucket is deterministic.
    std::vector<std::string> lane_order;
    for (StrategyKind lane : lanes) lane_order.push_back(StrategyKey(lane));
    const auto add_unique = [&](const char* key) {
      if (std::find(lane_order.begin(), lane_order.end(), key) ==
          lane_order.end()) {
        lane_order.push_back(key);
      }
    };
    add_unique("shard");  // arbiter records of a sharded kRecursive lane
    add_unique("mip");
    add_unique("h1");  // fallback records
    add_unique("advisor");
    journal_scope.SetLaneOrder(std::move(lane_order));
  }
  const size_t threads = exec::ResolveThreads(options.threads);

  candidates::CandidateSet candidate_set;
  bool need_candidates = false;
  for (StrategyKind lane : lanes) {
    need_candidates = need_candidates || NeedsCandidates(lane);
  }
  if (need_candidates) {
    if (options.candidate_limit == 0) {
      candidate_set = candidates::EnumerateAllCandidates(
          engine.workload(), options.candidate_max_width, deadline);
    } else {
      candidate_set = candidates::GenerateCandidates(
          engine.workload(), candidates::CandidateHeuristic::kH1M,
          options.candidate_limit, options.candidate_max_width, deadline);
    }
  }

  if (lanes.size() == 1) {
    const size_t shard_count = ResolveShardCount(options, engine.workload());
    StrategyOutcome out =
        RunStrategy(engine, options.strategy, options, rec.budget,
                    candidate_set, deadline, advisor_bounded, threads,
                    shard_count, rec.cost_before);
    if (out.hard_error && options.fallback == FallbackPolicy::kNone) {
      return out.status;
    }
    rec.selection = std::move(out.selection);
    rec.trace = std::move(out.trace);
    rec.status = std::move(out.status);
    strategy_degraded = out.degraded;
    extra_whatif_calls = out.extra_whatif_calls;
  } else {
    // Portfolio race. Lanes share the WhatIfEngine (concurrency-safe, so
    // one lane's what-if work warms the others' caches) and split the
    // thread budget evenly for their own inner parallelism. The winner is
    // chosen by inspection after all lanes return — never by finish
    // order — so the recommendation is deterministic.
    IDXSEL_OBS_SPAN(portfolio_span, "advisor", "advisor.portfolio");
    const size_t inner_threads = std::max<size_t>(1, threads / lanes.size());
    std::vector<StrategyOutcome> outcomes(lanes.size());
    auto run_lane = [&](size_t i) {
      outcomes[i] =
          RunStrategy(engine, lanes[i], options, rec.budget, candidate_set,
                      deadline, advisor_bounded, inner_threads,
                      /*shard_count=*/0, rec.cost_before);
    };
    if (threads > 1) {
      exec::ThreadPool pool(std::min(threads, lanes.size()));
      pool.ParallelFor(lanes.size(), run_lane, /*grain=*/1);
    } else {
      for (size_t i = 0; i < lanes.size(); ++i) run_lane(i);
    }

    // Deterministic reduction: lowest workload cost among feasible lanes;
    // strict `<` keeps the earliest lane (primary, then portfolio order)
    // on ties. Hard-errored lanes cannot win; deadline-hit lanes compete
    // with their anytime incumbents.
    size_t winner = lanes.size();
    double winner_cost = std::numeric_limits<double>::infinity();
    // Per-lane verdicts for the journal, captured from the values the
    // reduction computes anyway (no extra engine calls when journaling).
    std::vector<const char*> lane_verdict(lanes.size(), "feasible");
    std::vector<double> lane_cost(lanes.size(), 0.0);
    for (size_t i = 0; i < lanes.size(); ++i) {
      if (outcomes[i].hard_error) {
        lane_verdict[i] = "hard-error";
        continue;
      }
      if (engine.ConfigMemory(outcomes[i].selection) >
          rec.budget * (1.0 + 1e-9)) {
        lane_verdict[i] = "infeasible";
        continue;
      }
      const double cost = engine.WorkloadCost(outcomes[i].selection);
      lane_cost[i] = cost;
      if (cost < winner_cost) {
        winner_cost = cost;
        winner = i;
      }
    }
    if (telemetry::JournalActive()) {
      for (size_t i = 0; i < lanes.size(); ++i) {
        telemetry::JournalEvent event;
        event.strategy = "advisor";
        event.action = "lane";
        event.round = i + 1;
        event.winner = StrategyKey(lanes[i]);
        event.objective_after = lane_cost[i];
        std::string note = lane_verdict[i];
        if (i == winner) note += " race-winner";
        event.note = note.c_str();
        telemetry::EmitJournal(event);
      }
    }
    if (winner == lanes.size()) {
      // Every lane failed hard (or returned infeasible garbage); surface
      // the primary's failure, optionally absorbed by the fallback below.
      if (options.fallback == FallbackPolicy::kNone) {
        return outcomes.front().status;
      }
      rec.status = std::move(outcomes.front().status);
    } else {
      rec.selection = std::move(outcomes[winner].selection);
      rec.trace = std::move(outcomes[winner].trace);
      rec.status = std::move(outcomes[winner].status);
      rec.executed_strategy = lanes[winner];
    }
#if defined(IDXSEL_OBS)
    {
      obs::Registry& registry = obs::Registry::Default();
      registry.GetCounter("idxsel.advisor.portfolio.races")->Add(1);
      registry.GetCounter("idxsel.advisor.portfolio.lanes")
          ->Add(lanes.size());
      if (winner < lanes.size()) {
        registry
            .GetCounter(std::string("idxsel.strategy.") +
                        StrategyKey(lanes[winner]) + ".portfolio_wins")
            ->Add(1);
      }
    }
#endif
  }

  // A strategy that completed just before the wire still consumed the
  // whole advisor budget; report it as a DNF like any cut-short run.
  if (rec.status.ok() && deadline.expired()) {
    rec.status = Status::Timeout("advisor: deadline expired");
  }
  rec.dnf = rec.status.code() == StatusCode::kTimeout;

  // Graceful degradation: if the strategy did not finish cleanly, run the
  // cheapest always-completing heuristic (H1 ranks without what-if calls)
  // over single-attribute candidates, and keep whichever feasible
  // selection is cheaper. The fallback runs *without* the deadline: the
  // budget is already spent and this pass is O(attributes) on cached
  // sizes.
  if (!rec.status.ok() &&
      options.fallback == FallbackPolicy::kCheapestHeuristic) {
    candidates::CandidateSet singles;
    for (workload::AttributeId i = 0;
         i < engine.workload().num_attributes(); ++i) {
      singles.Add(Index(i));
    }
    selection::SelectionResult fb = selection::SelectRuleBased(
        engine, singles, rec.budget, selection::RuleHeuristic::kH1);
    const double primary_cost = engine.WorkloadCost(rec.selection);
    if (fb.objective < primary_cost) {
      rec.selection = std::move(fb.selection);
      rec.trace.clear();
      rec.fell_back = true;
      rec.executed_strategy = StrategyKind::kH1;
    }
    if (telemetry::JournalActive()) {
      telemetry::JournalEvent event;
      event.strategy = "advisor";
      event.action = "fallback";
      event.winner = StrategyKey(rec.executed_strategy);
      event.objective_after =
          rec.fell_back ? fb.objective : primary_cost;
      event.note = rec.fell_back
                       ? "fallback heuristic replaced the primary incumbent"
                       : "primary incumbent kept (fallback not cheaper)";
      telemetry::EmitJournal(event);
    }
  }
  }  // recommend_span closes here.

  rec.runtime_seconds = watch.ElapsedSeconds();
  rec.whatif_calls = engine.stats().calls - calls_before + extra_whatif_calls;
  rec.memory = engine.ConfigMemory(rec.selection);
  rec.cost_after = engine.WorkloadCost(rec.selection);
  rec.degraded = !rec.status.ok() || rec.fell_back ||
                 !engine.health().ok() || strategy_degraded;
  if (telemetry::JournalActive()) {
    // The advisor's closing verdict — deliberately free of wall-clock
    // fields so the journal stays byte-identical run-to-run.
    telemetry::JournalEvent event;
    event.strategy = "advisor";
    event.action = "decision";
    event.winner = StrategyKey(rec.executed_strategy);
    event.objective_before = rec.cost_before;
    event.objective_after = rec.cost_after;
    event.memory_after = rec.memory;
    std::string note = std::string("strategy=") + StrategyKey(rec.strategy);
    if (rec.dnf) note += " dnf";
    if (rec.fell_back) note += " fell-back";
    if (rec.degraded) note += " degraded";
    event.note = note.c_str();
    telemetry::EmitJournal(event);
  }
  rec.journal = journal_scope.Finish();
#if defined(IDXSEL_OBS)
  {
    obs::Registry& registry = obs::Registry::Default();
    const std::string prefix =
        std::string("idxsel.strategy.") + StrategyKey(options.strategy);
    registry.GetCounter(prefix + ".runs")->Add(1);
    if (rec.dnf) registry.GetCounter("idxsel.rt.timeout")->Add(1);
    if (rec.fell_back) registry.GetCounter("idxsel.rt.fallback")->Add(1);
    if (obs::Enabled()) {
      registry.GetHistogram(prefix + ".wall_ns")
          ->Record(static_cast<uint64_t>(rec.runtime_seconds * 1e9));
    }
    rec.report = obs_scope.Finish();
  }
#endif
  return rec;
}

std::string Recommendation::Explain(const costmodel::Index& index) const {
#if !defined(IDXSEL_OBS)
  (void)index;
  return "observability disabled: this build was configured with "
         "-DIDXSEL_ENABLE_OBS=OFF, so no selection journal exists. "
         "Rebuild with IDXSEL_ENABLE_OBS=ON and enable the journal "
         "(IDXSEL_JOURNAL=1 or obs::SetJournalEnabled(true)) to record "
         "decision provenance.";
#else
  const std::string label = index.ToString();
  std::string out = "explain " + label + ":\n";
  out += selection.Contains(index)
             ? "  in the recommended selection\n"
             : "  not in the recommended selection\n";
  if (journal.empty()) {
    out += "  no journal was recorded for this run; enable it with "
           "IDXSEL_JOURNAL=1 or obs::SetJournalEnabled(true) before "
           "Recommend()\n";
    return out;
  }
  size_t mentions = 0;
  const auto line_head = [](const obs::JournalRecord& r) {
    return "  [" + r.strategy + "/" + r.action + " round " +
           std::to_string(r.round) + "] ";
  };
  for (const obs::JournalRecord& r : journal) {
    if (r.winner == label &&
        (r.action == "commit" || r.action == "pick" || r.action == "swap")) {
      ++mentions;
      out += line_head(r) + "chosen: ratio " + FormatDouble(r.winner_ratio, 6);
      if (!ExactlyZero(r.margin)) {
        out += ", margin " + FormatDouble(r.margin, 6) + " over runner-up";
      }
      out += "\n";
      continue;
    }
    if (r.winner == label && r.action == "prune") {
      ++mentions;
      out += line_head(r) + "pruned: " + r.note + "\n";
      continue;
    }
    for (const obs::JournalCandidate& c : r.candidates) {
      if (c.index != label) continue;
      ++mentions;
      if (!c.reject.empty()) {
        out += line_head(r) + "rejected (" + c.reject + "): benefit " +
               FormatDouble(c.benefit, 6) + ", memory delta " +
               FormatDouble(c.memory_delta, 0) + ", ratio " +
               FormatDouble(c.ratio, 6) + "\n";
      } else if (r.winner != label) {
        out += line_head(r) + "selected (memory " +
               FormatDouble(c.memory_delta, 0) + ")\n";
      }
    }
  }
  if (mentions == 0) {
    out += "  never appeared in any journaled decision (it was not an "
           "eligible candidate move of any round)\n";
  }
  return out;
#endif
}

std::string RenderReport(WhatIfEngine& engine, const Recommendation& rec,
                         const std::vector<std::string>* attribute_names) {
  const workload::Workload& w = engine.workload();
  auto index_label = [&](const Index& k) {
    std::string out = "(";
    for (size_t u = 0; u < k.width(); ++u) {
      if (u != 0) out += ", ";
      out += attribute_names != nullptr
                 ? (*attribute_names)[k.attribute(u)]
                 : std::to_string(k.attribute(u));
    }
    return out + ")";
  };

  std::string out;
  out += "=== Index recommendation — " +
         std::string(StrategyName(rec.strategy)) + " ===\n";
  out += "budget:        " + FormatBytes(rec.budget) + "\n";
  out += "memory used:   " + FormatBytes(rec.memory) + " (" +
         FormatDouble(rec.budget > 0 ? 100.0 * rec.memory / rec.budget : 0.0,
                      1) +
         "% of budget)\n";
  out += "workload cost: " + FormatDouble(rec.cost_before, 0) + " -> " +
         FormatDouble(rec.cost_after, 0) + " (" +
         FormatDouble(rec.cost_before > 0
                          ? 100.0 * rec.cost_after / rec.cost_before
                          : 0.0,
                      2) +
         "% of unindexed)\n";
  out += "runtime:       " + FormatSeconds(rec.runtime_seconds) +
         (rec.dnf ? " (DNF: time limit, incumbent reported)" : "") + "\n";
  if (rec.fell_back) {
    out += "note:          fell back to " +
           std::string(StrategyName(rec.executed_strategy)) +
           " (primary strategy did not finish cleanly)\n";
  } else if (rec.degraded) {
    out += "note:          degraded result (timeout or sanitized what-if "
           "answers; see status)\n";
  }
  out += "what-if calls: " + FormatCount(static_cast<int64_t>(
                                 rec.whatif_calls)) +
         "\n\n";

  // Count, per index, the queries it serves best.
  std::vector<size_t> served(rec.selection.size(), 0);
  const auto& indexes = rec.selection.indexes();
  for (workload::QueryId j = 0; j < w.num_queries(); ++j) {
    double best = engine.BaseCost(j);
    size_t owner = indexes.size();
    for (size_t p = 0; p < indexes.size(); ++p) {
      if (!engine.Applicable(j, indexes[p])) continue;
      const double cost = engine.CostWithIndex(j, indexes[p]);
      if (cost < best) {
        best = cost;
        owner = p;
      }
    }
    if (owner < indexes.size()) ++served[owner];
  }

  out += "recommended indexes (" + std::to_string(indexes.size()) + "):\n";
  for (size_t p = 0; p < indexes.size(); ++p) {
    out += "  " + index_label(indexes[p]) + "  " +
           FormatBytes(engine.IndexMemory(indexes[p])) + ", best plan for " +
           std::to_string(served[p]) + " queries\n";
  }
  if (!indexes.empty()) {
    out += "\nDDL:\n";
    out += costmodel::RenderCreateStatements(w, rec.selection,
                                             attribute_names);
  }
  return out;
}

}  // namespace idxsel::advisor
